// Package diff is the cross-solver differential harness over generated
// Secure-View instances (internal/gen): it runs every applicable solver on
// each instance — through the internal/solve registry — and checks the
// invariants the paper's theorems promise:
//
//   - exact enumeration, branch-and-bound and the pruned parallel engine
//     agree on the optimal cost (and, between engine runs, on the exact
//     hidden set, thanks to the deterministic lexicographic tie-break);
//   - Greedy and LP-rounded solutions are always feasible, never cheaper
//     than the optimum, and within the paper's approximation bounds —
//     Multiplicity()×OPT for greedy on all-private instances (Theorem 7)
//     and ℓmax×LP for the set-constraint rounding (Theorem 6 / B.5.1);
//   - the LP optimum lower-bounds OPT (it is a relaxation);
//   - the compiled integer-coded oracle agrees with the interpreted
//     Lemma 4 semantics on EVERY subset of every generated module;
//   - on instances small enough to enumerate, the assembled solution is
//     Γ-workflow-private under exhaustive possible-world semantics
//     (Theorems 4/8), and the worlds-grounded optimum never costs more
//     than the assembly optimum;
//   - warm-start resumption is invisible to correctness: re-solving after a
//     deterministic cost-only edit with the previous run's exported frontier
//     returns the identical (cost, lex) optimum a cold solve does, on both
//     the registry engine path and the standalone compiled path with
//     batching and symmetry collapsing enabled (Proposition 1 verdicts are
//     cost-independent).
//
// Exact solvers that exhaust their budgets must say so with the typed
// secureview.ErrNodeBudget (or report a genuinely infeasible derivation
// with secureview.ErrInfeasible): those are counted as skips, as is
// context cancellation of a ...Ctx run (a torn-down harness returns a
// clean, incomplete Result), while any other failure is a violation — a
// harness that silently skips on arbitrary errors verifies nothing.
//
// Any violated invariant lands in Result.Violations; a run over generated
// corpora must come back with zero.
package diff

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"secureview/internal/gen"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/solve"
	"secureview/internal/worlds"
)

// Options tunes the harness.
type Options struct {
	// RoundSeed seeds the randomized cardinality LP rounding (default 1).
	RoundSeed int64
	// ExactSetNodes caps the exact set-variant search (default 1<<22).
	ExactSetNodes int
	// ExactCardAttrs caps the exact cardinality enumeration (default 16).
	ExactCardAttrs int
	// WorldsAttrLimit gates exhaustive possible-world verification: it runs
	// only when the workflow has at most this many attributes (default 11).
	WorldsAttrLimit int
	// WorldsBudget caps each worlds enumeration (default 1<<22).
	WorldsBudget uint64
	// Search tunes the engine runs (worker-pool size).
	Search search.Options
	// Session, when non-nil, shares derived problems and compiled oracle
	// tables across instances and harness runs (nil runs a private session
	// per instance).
	Session *solve.Session
}

func (o Options) withDefaults() Options {
	if o.RoundSeed == 0 {
		o.RoundSeed = 1
	}
	if o.ExactSetNodes == 0 {
		o.ExactSetNodes = 1 << 22
	}
	if o.ExactCardAttrs == 0 {
		o.ExactCardAttrs = 16
	}
	if o.WorldsAttrLimit == 0 {
		o.WorldsAttrLimit = 11
	}
	if o.WorldsBudget == 0 {
		o.WorldsBudget = 1 << 22
	}
	return o
}

// solveOptions maps harness knobs onto the registry's uniform Options.
func (o Options) solveOptions(v secureview.Variant) solve.Options {
	return solve.Options{
		Variant:    v,
		NodeBudget: o.ExactSetNodes,
		MaxAttrs:   o.ExactCardAttrs,
		Workers:    o.Search.Parallelism,
		Seed:       o.RoundSeed,
		Trials:     5,
	}
}

// Result aggregates what a harness run did and every invariant it saw
// violated. Results from many instances are combined with Merge.
type Result struct {
	// Instances counts instances examined; Exact counts those where at
	// least one exact optimum was computed (the anchor for ratio checks).
	Instances, Exact int
	// SolverRuns counts individual solver invocations.
	SolverRuns int
	// OracleMasks counts compiled-vs-interpreted subsets compared.
	OracleMasks int
	// WorldsVerified counts instances whose solution survived exhaustive
	// possible-world verification.
	WorldsVerified int
	// Skips counts checks skipped because an instance was infeasible at Γ,
	// too large for an exact solver, or too large to enumerate worlds.
	Skips int
	// MaxGreedyRatio / MaxLPRatio track the worst observed approximation
	// ratios (cost / exact optimum).
	MaxGreedyRatio, MaxLPRatio float64
	// Violations describes every failed invariant.
	Violations []string
}

// Merge combines results.
func Merge(rs ...Result) Result {
	var out Result
	for _, r := range rs {
		out.Instances += r.Instances
		out.Exact += r.Exact
		out.SolverRuns += r.SolverRuns
		out.OracleMasks += r.OracleMasks
		out.WorldsVerified += r.WorldsVerified
		out.Skips += r.Skips
		if r.MaxGreedyRatio > out.MaxGreedyRatio {
			out.MaxGreedyRatio = r.MaxGreedyRatio
		}
		if r.MaxLPRatio > out.MaxLPRatio {
			out.MaxLPRatio = r.MaxLPRatio
		}
		out.Violations = append(out.Violations, r.Violations...)
	}
	return out
}

func (r *Result) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// cancelled reports a context-cancellation error: a caller tearing the
// harness down mid-run must get a clean (if incomplete) Result, not
// spurious violations.
func cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// skipOrViolate classifies a solver error: typed budget exhaustion and
// context cancellation are legitimate skips, anything else is a harness
// violation.
func (r *Result) skipOrViolate(name, what string, err error) {
	if errors.Is(err, secureview.ErrNodeBudget) || cancelled(err) {
		r.Skips++
		return
	}
	r.violatef("%s: %s failed with a non-budget error: %v", name, what, err)
}

// eps returns an absolute tolerance scaled to the magnitude of float cost
// comparisons.
func eps(x float64) float64 { return 1e-6 * (1 + x) }

// warmEdit returns a deterministic cost-only rewrite over the given
// attribute names: each gets a new positive cost from its sorted rank,
// reshuffling which optima are cheap without touching structure — exactly
// the regime where warm-start resumption is sound (safety verdicts are
// cost-independent).
func warmEdit(names []string) privacy.Costs {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	out := make(privacy.Costs, len(sorted))
	for i, a := range sorted {
		out[a] = float64((i*7+3)%5) + 0.5
	}
	return out
}

// CheckProblem runs the full solver matrix on an abstract instance (both
// constraint variants) and returns the differential result. The name tags
// violations. It is CheckProblemCtx without cancellation.
func CheckProblem(name string, p *secureview.Problem, opts Options) Result {
	return CheckProblemCtx(context.Background(), name, p, opts)
}

// CheckProblemCtx runs the solver matrix through the internal/solve
// registry with the given context, which every solver observes within one
// pruning epoch.
func CheckProblemCtx(ctx context.Context, name string, p *secureview.Problem, opts Options) Result {
	opts = opts.withDefaults()
	var r Result
	r.Instances = 1
	exactAnchored := false

	allPrivate := true
	for _, m := range p.Modules {
		if m.Public {
			allPrivate = false
		}
	}
	mult := p.Multiplicity()

	// --- set variant ---
	if err := p.Validate(secureview.Set); err == nil {
		exact, err := solve.Solve(ctx, "exact", p, opts.solveOptions(secureview.Set))
		r.SolverRuns++
		if err != nil {
			r.skipOrViolate(name, "exact set solver", err)
		} else {
			exactAnchored = true
			if !p.Feasible(exact.Solution, secureview.Set) {
				r.violatef("%s: exact set solution infeasible", name)
			}
			r.checkEngine(ctx, name+"/set", p, secureview.Set, exact.Cost, opts)
			r.checkHeuristics(ctx, name+"/set", p, secureview.Set, exact.Cost, allPrivate, mult, opts)
		}
	}

	// --- cardinality variant ---
	if err := p.Validate(secureview.Cardinality); err == nil {
		exact, errE := solve.Solve(ctx, "exact", p, opts.solveOptions(secureview.Cardinality))
		bb, errB := solve.Solve(ctx, "bb", p, opts.solveOptions(secureview.Cardinality))
		r.SolverRuns += 2
		switch {
		case errE != nil || errB != nil:
			if errE != nil {
				r.skipOrViolate(name, "exact card solver", errE)
			}
			if errB != nil {
				r.skipOrViolate(name, "branch-and-bound solver", errB)
			}
		default:
			exactAnchored = true
			if !p.Feasible(exact.Solution, secureview.Cardinality) {
				r.violatef("%s: exact card solution infeasible", name)
			}
			if !p.Feasible(bb.Solution, secureview.Cardinality) {
				r.violatef("%s: branch-and-bound solution infeasible", name)
			}
			if dx := exact.Cost - bb.Cost; dx > eps(exact.Cost) || -dx > eps(exact.Cost) {
				r.violatef("%s: exact enumeration cost %g != branch-and-bound cost %g", name, exact.Cost, bb.Cost)
			}
			r.checkEngine(ctx, name+"/card", p, secureview.Cardinality, exact.Cost, opts)
			r.checkHeuristics(ctx, name+"/card", p, secureview.Cardinality, exact.Cost, allPrivate, mult, opts)
		}
	}

	if exactAnchored {
		r.Exact = 1
	}
	return r
}

// checkEngine cross-checks the subset-search engine solver against the
// exact optimum whenever the instance is in its capability envelope
// (all-private, universe within the mask width).
func (r *Result) checkEngine(ctx context.Context, name string, p *secureview.Problem,
	variant secureview.Variant, optCost float64, opts Options) {
	eng, ok := solve.Get("engine")
	if !ok || eng.Supports(p, variant) != nil {
		return
	}
	res, err := solve.Solve(ctx, "engine", p, opts.solveOptions(variant))
	r.SolverRuns++
	if err != nil {
		if cancelled(err) {
			r.Skips++
			return
		}
		r.violatef("%s: engine solver failed: %v", name, err)
		return
	}
	if !p.Feasible(res.Solution, variant) {
		r.violatef("%s: engine solution infeasible", name)
	}
	if dx := res.Cost - optCost; dx > eps(optCost) || -dx > eps(optCost) {
		r.violatef("%s: engine cost %g != exact optimum %g", name, res.Cost, optCost)
	}

	// Equivalence-class collapsing claims to preserve the exact (cost, lex)
	// optimum: rerun with the collapse disabled and demand the identical
	// hidden set, not just the cost.
	plainOpts := opts.solveOptions(variant)
	plainOpts.DisableCollapse = true
	plain, err := solve.Solve(ctx, "engine", p, plainOpts)
	r.SolverRuns++
	if err != nil {
		if cancelled(err) {
			r.Skips++
			return
		}
		r.violatef("%s: engine solver (collapse disabled) failed: %v", name, err)
		return
	}
	// Costs are re-summed over a name-set (map) per run, so two runs over
	// the same hidden set can differ in the last ulp; the hidden set itself
	// must match exactly.
	if dx := plain.Cost - res.Cost; !plain.Solution.Hidden.Equal(res.Solution.Hidden) ||
		dx > eps(res.Cost) || -dx > eps(res.Cost) {
		r.violatef("%s: collapse changed the engine optimum: %v (%g) vs %v (%g) without",
			name, res.Solution.Hidden.Sorted(), res.Cost, plain.Solution.Hidden.Sorted(), plain.Cost)
	}

	// Warm-start invariant: resuming the frontier exported by the
	// (collapse-enabled) run after a cost-only edit must reproduce the cold
	// optimum on the edited instance — the hidden set bit for bit, the cost
	// within the same map-summation tolerance as above.
	if res.Frontier == nil {
		r.violatef("%s: engine run exported no warm-start frontier", name)
		return
	}
	names := make([]string, 0, len(p.Costs))
	for a := range p.Costs {
		names = append(names, a)
	}
	ep := &secureview.Problem{Modules: p.Modules, Costs: warmEdit(names)}
	cold, errC := solve.Solve(ctx, "engine", ep, opts.solveOptions(variant))
	warmOpts := opts.solveOptions(variant)
	warmOpts.Resume = res.Frontier
	warm, errW := solve.Solve(ctx, "engine", ep, warmOpts)
	r.SolverRuns += 2
	if errC != nil || errW != nil {
		if cancelled(errC) || cancelled(errW) {
			r.Skips++
			return
		}
		r.violatef("%s: warm-start engine re-solve failed: cold=%v warm=%v", name, errC, errW)
		return
	}
	if !warm.Resumed {
		r.violatef("%s: engine ignored a matching resume frontier", name)
	}
	if dx := warm.Cost - cold.Cost; !warm.Solution.Hidden.Equal(cold.Solution.Hidden) ||
		dx > eps(cold.Cost) || -dx > eps(cold.Cost) {
		r.violatef("%s: warm re-solve optimum %v (%g) != cold %v (%g) after a cost edit",
			name, warm.Solution.Hidden.Sorted(), warm.Cost, cold.Solution.Hidden.Sorted(), cold.Cost)
	}
}

// checkHeuristics runs Greedy and the variant's LP rounding against the
// exact optimum and records feasibility, ordering and approximation-bound
// violations on r.
func (r *Result) checkHeuristics(ctx context.Context, name string, p *secureview.Problem,
	variant secureview.Variant, optCost float64, allPrivate bool, mult int, opts Options) {
	greedy, err := solve.Solve(ctx, "greedy", p, opts.solveOptions(variant))
	r.SolverRuns++
	if err != nil {
		if cancelled(err) {
			r.Skips++
			return
		}
		r.violatef("%s: greedy solver failed: %v", name, err)
		return
	}
	gc := greedy.Cost
	if !p.Feasible(greedy.Solution, variant) {
		r.violatef("%s: greedy solution infeasible", name)
	}
	if gc < optCost-eps(optCost) {
		r.violatef("%s: greedy cost %g below optimum %g", name, gc, optCost)
	}
	if allPrivate && mult > 0 && gc > float64(mult)*optCost+eps(gc) {
		r.violatef("%s: greedy cost %g exceeds Theorem 7 bound %d×%g", name, gc, mult, optCost)
	}
	if greedy.Bound.Factor > 0 && optCost > 0 && gc > greedy.Bound.Factor*optCost+eps(gc) {
		r.violatef("%s: greedy cost %g exceeds its own certificate %g×%g (%s)",
			name, gc, greedy.Bound.Factor, optCost, greedy.Bound.Theorem)
	}
	if optCost > 0 && gc/optCost > r.MaxGreedyRatio {
		r.MaxGreedyRatio = gc / optCost
	}

	rounded, err := solve.Solve(ctx, "lp", p, opts.solveOptions(variant))
	r.SolverRuns++
	if err != nil {
		if cancelled(err) {
			r.Skips++
			return
		}
		r.violatef("%s: LP rounding failed: %v", name, err)
		return
	}
	rc, lpVal := rounded.Cost, rounded.Bound.LP
	if !p.Feasible(rounded.Solution, variant) {
		r.violatef("%s: LP-rounded solution infeasible", name)
	}
	if rc < optCost-eps(optCost) {
		r.violatef("%s: LP-rounded cost %g below optimum %g", name, rc, optCost)
	}
	if lpVal > optCost+eps(optCost) {
		r.violatef("%s: LP value %g exceeds optimum %g (not a relaxation?)", name, lpVal, optCost)
	}
	if variant == secureview.Set {
		if lmax := rounded.Bound.Factor; lmax > 0 && rc > lmax*lpVal+eps(rc) {
			r.violatef("%s: rounded cost %g exceeds ℓmax bound %g×%g", name, rc, lmax, lpVal)
		}
	}
	if optCost > 0 && rc/optCost > r.MaxLPRatio {
		r.MaxLPRatio = rc / optCost
	}
}

// CheckMega runs the certified-approximation matrix on a mega-scale
// abstract instance. It is CheckMegaCtx without cancellation.
func CheckMega(name string, p *secureview.Problem, opts Options) Result {
	return CheckMegaCtx(context.Background(), name, p, opts)
}

// CheckMegaCtx verifies the approximation tier in the regime exact search
// cannot anchor: for each variant it first confirms the exact solver
// either finishes (small instances remain legal inputs) or declines with
// the typed budget error, then runs every certified approximation solver
// plus the portfolio and checks that each result is feasible and that its
// certificate holds arithmetically — cost ≤ Bound.Factor × Bound.LP with
// a strictly positive lower bound. The certificates are LP-relative by
// construction, so this is checkable even when no exact optimum will ever
// be known; when exact does finish, the optimum additionally sandwiches
// every result from below and Bound.LP from above.
func CheckMegaCtx(ctx context.Context, name string, p *secureview.Problem, opts Options) Result {
	opts = opts.withDefaults()
	var r Result
	r.Instances = 1
	for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
		if p.Validate(v) != nil {
			continue
		}
		vn := name + "/" + map[secureview.Variant]string{secureview.Set: "set", secureview.Cardinality: "card"}[v]
		optCost := -1.0
		exact, err := solve.Solve(ctx, "exact", p, opts.solveOptions(v))
		r.SolverRuns++
		if err != nil {
			// The exact tier must decline the mega regime loudly and typed,
			// not crash or grind: anything but budget/cancel is a violation.
			r.skipOrViolate(vn, "exact solver on mega instance", err)
		} else {
			optCost = exact.Cost
			r.Exact = 1
		}
		for _, solver := range []string{"approx-setcover", "approx-labelcover", "portfolio"} {
			s, ok := solve.Get(solver)
			if !ok || s.Supports(p, v) != nil {
				continue
			}
			r.checkCertified(ctx, vn, solver, p, v, optCost, opts)
		}
	}
	return r
}

// checkCertified runs one certified solver and verifies feasibility plus
// the arithmetic of its certificate. optCost < 0 means no exact anchor is
// available (the mega regime).
func (r *Result) checkCertified(ctx context.Context, name, solver string, p *secureview.Problem,
	v secureview.Variant, optCost float64, opts Options) {
	res, err := solve.Solve(ctx, solver, p, opts.solveOptions(v))
	r.SolverRuns++
	if err != nil {
		r.skipOrViolate(name, solver, err)
		return
	}
	if !p.Feasible(res.Solution, v) {
		r.violatef("%s: %s solution infeasible", name, solver)
		return
	}
	if res.Bound.Factor <= 0 && !res.Optimal {
		r.violatef("%s: %s returned no certificate on a mega instance", name, solver)
		return
	}
	if !res.Optimal {
		if res.Bound.LP <= 0 {
			r.violatef("%s: %s certificate has a vacuous lower bound %g", name, solver, res.Bound.LP)
			return
		}
		if gap := solve.CertifiedGap(res); gap > eps(res.Cost) {
			r.violatef("%s: %s cost %g exceeds its certificate %g×%g (%s)",
				name, solver, res.Cost, res.Bound.Factor, res.Bound.LP, res.Bound.Theorem)
		}
	}
	if optCost >= 0 {
		if res.Cost < optCost-eps(optCost) {
			r.violatef("%s: %s cost %g below exact optimum %g", name, solver, res.Cost, optCost)
		}
		if res.Bound.LP > optCost+eps(optCost) {
			r.violatef("%s: %s lower bound %g exceeds exact optimum %g", name, solver, res.Bound.LP, optCost)
		}
	}
}

// CheckInstance runs the harness on a generated workflow instance. It is
// CheckInstanceCtx without cancellation.
func CheckInstance(it *gen.Instance, opts Options) Result {
	return CheckInstanceCtx(context.Background(), it, opts)
}

// CheckInstanceCtx runs the harness on a generated workflow instance: the
// standalone engine matrix per private module, the derived set- and
// cardinality-variant solver matrices (derivations and compiled oracles
// served through a solve.Session, shared across instances when
// Options.Session is set), compiled-vs-interpreted oracle agreement, and —
// when small enough — exhaustive possible-world verification of the
// assembled optimum plus the worlds-vs-assembly cost ordering.
func CheckInstanceCtx(ctx context.Context, it *gen.Instance, opts Options) Result {
	opts = opts.withDefaults()
	sess := opts.Session
	if sess == nil {
		sess = solve.NewSession()
	}
	var r Result
	r.Instances = 1
	name := fmt.Sprintf("%s/seed=%d", it.W.Name(), it.Seed)

	r.checkStandalone(name, it, sess, opts)

	// Derived set-variant instance.
	pset, errSet := sess.Problem(ctx, it.W, secureview.Set, it.Gamma, it.Costs, it.PrivatizeCosts)
	var exactSet secureview.Solution
	haveExact := false
	if errSet != nil {
		if errors.Is(errSet, secureview.ErrInfeasible) || cancelled(errSet) {
			r.Skips++ // no safe subset at Γ (or a cancelled run): legitimately skip
		} else {
			r.violatef("%s: derivation failed with a non-infeasibility error: %v", name, errSet)
		}
	} else {
		res, err := solve.Solve(ctx, "exact", pset, opts.solveOptions(secureview.Set))
		r.SolverRuns++
		if err != nil {
			r.skipOrViolate(name, "derived-set exact solver", err)
		} else {
			haveExact = true
			exactSet = res.Solution
			r.Exact = 1
			allPrivate := len(it.W.PublicModules()) == 0
			r.checkEngine(ctx, name+"/derived-set", pset, secureview.Set, res.Cost, opts)
			r.checkHeuristics(ctx, name+"/derived-set", pset, secureview.Set, res.Cost, allPrivate, pset.Multiplicity(), opts)
		}
	}

	// Derived cardinality-variant instance.
	if pcard, err := sess.Problem(ctx, it.W, secureview.Cardinality, it.Gamma, it.Costs, it.PrivatizeCosts); err == nil {
		sub := CheckProblemCtx(ctx, name+"/derived-card", pcard, opts)
		sub.Instances, sub.Exact = 0, 0 // same instance, don't double count
		r = Merge(r, sub)
	} else if errors.Is(err, secureview.ErrInfeasible) || cancelled(err) {
		r.Skips++
	} else {
		r.violatef("%s: cardinality derivation failed with a non-infeasibility error: %v", name, err)
	}

	if haveExact {
		r.checkWorlds(ctx, name, it, pset, exactSet, opts)
	}
	return r
}

// CheckRef resolves an instance reference (gen.Resolve) and runs the
// harness on the result. It is CheckRefCtx without cancellation.
//
// The package does not import internal/gen/corpus; callers that pass
// corpus-ID references must import it themselves (for its resolver
// registration side effect).
func CheckRef(ref gen.InstanceRef, opts Options) Result {
	return CheckRefCtx(context.Background(), ref, opts)
}

// CheckRefCtx dispatches a resolved reference to the matching harness
// entry point: abstract problem classes run the problem-level matrix;
// recorded-log (CSV) instances derive under partial-log semantics and run
// the problem-level matrix on the derived problem (session derivations do
// not capture the recorded log, so the instance path would verify the
// wrong requirements); every other workflow-backed source runs the full
// instance harness. An unresolvable reference is a violation, not an
// error — a corpus or fixture that no longer resolves must fail the run.
func CheckRefCtx(ctx context.Context, ref gen.InstanceRef, opts Options) Result {
	var r Result
	rv, err := gen.Resolve(ref)
	if err != nil {
		r.Instances = 1
		r.violatef("ref: %v", err)
		return r
	}
	if rv.Problem != nil {
		return CheckProblemCtx(ctx, rv.Name, rv.Problem, opts)
	}
	if rv.Instance.Recorded != nil {
		p, derr := rv.Derive()
		if derr != nil {
			r.Instances = 1
			if errors.Is(derr, secureview.ErrInfeasible) || cancelled(derr) {
				r.Skips++
				return r
			}
			r.violatef("%s: derivation failed with a non-infeasibility error: %v", rv.Name, derr)
			return r
		}
		return CheckProblemCtx(ctx, rv.Name, p, opts)
	}
	return CheckInstanceCtx(ctx, rv.Instance, opts)
}

// checkStandalone compares, for every private module of the instance, the
// naive 2^k loop, the pruned engine and the compiled-oracle engine on the
// standalone min-cost safe subset, and the compiled vs interpreted oracle
// on every subset. Compiled tables come from the session, so instances
// sharing module functionality compile once.
func (r *Result) checkStandalone(name string, it *gen.Instance, sess *solve.Session, opts Options) {
	for _, m := range it.W.PrivateModules() {
		if m.Arity() > 12 {
			r.Skips++
			continue
		}
		mv := privacy.NewModuleView(m)
		sp, err := search.NewSpace(mv.Attrs(), it.Costs.Of)
		if err != nil {
			r.violatef("%s/%s: %v", name, m.Name(), err)
			continue
		}
		interp := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), it.Gamma) }
		naive, errN := sp.NaiveMinCost(interp)
		engine, errE := sp.MinCost(interp, opts.Search)
		r.SolverRuns += 2
		if errN != nil || errE != nil {
			r.violatef("%s/%s: standalone search failed: %v %v", name, m.Name(), errN, errE)
			continue
		}
		if naive.Found != engine.Found {
			r.violatef("%s/%s: naive found=%v but engine found=%v", name, m.Name(), naive.Found, engine.Found)
			continue
		}
		if naive.Found && naive.Cost != engine.Cost {
			r.violatef("%s/%s: naive optimum %g != engine optimum %g", name, m.Name(), naive.Cost, engine.Cost)
		}

		comp, err := sess.Compiled(mv)
		if err != nil {
			r.Skips++
			continue
		}
		interpOracle := privacy.OracleFunc(func(v relation.NameSet) (bool, error) {
			return mv.IsSafe(v, it.Gamma)
		})
		compOracle := privacy.OracleFunc(func(v relation.NameSet) (bool, error) {
			return comp.IsSafe(comp.MaskOf(v), it.Gamma), nil
		})
		disagree, compared, err := privacy.OraclesAgree(mv.Attrs(), interpOracle, compOracle)
		if err != nil {
			r.violatef("%s/%s: oracle comparison failed: %v", name, m.Name(), err)
			continue
		}
		r.OracleMasks += compared
		if disagree != nil {
			r.violatef("%s/%s: compiled oracle disagrees with Lemma 4 on %v", name, m.Name(), disagree)
		}
		compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), it.Gamma), nil }
		engineC, err := sp.MinCost(compiled, opts.Search)
		r.SolverRuns++
		if err != nil {
			r.violatef("%s/%s: compiled engine search failed: %v", name, m.Name(), err)
			continue
		}
		// Engine runs share the lexicographic tie-break, so the full result
		// must match bit for bit.
		if engineC.Found != engine.Found || engineC.Hidden != engine.Hidden || engineC.Cost != engine.Cost {
			r.violatef("%s/%s: compiled engine optimum (found=%v hidden=%b cost=%g) != interpreted (found=%v hidden=%b cost=%g)",
				name, m.Name(), engineC.Found, engineC.Hidden, engineC.Cost, engine.Found, engine.Hidden, engine.Cost)
		}

		// The full tentpole configuration — batched passes plus oracle-level
		// symmetry collapsing — must also be byte-identical to the plain run.
		engineB, err := sp.MinCost(compiled, privacy.CompiledSearchOptions(comp, it.Costs, it.Gamma, opts.Search))
		r.SolverRuns++
		if err != nil {
			r.violatef("%s/%s: batched+collapsed engine search failed: %v", name, m.Name(), err)
			continue
		}
		if engineB.Found != engine.Found || engineB.Hidden != engine.Hidden || engineB.Cost != engine.Cost {
			r.violatef("%s/%s: batched+collapsed engine optimum (found=%v hidden=%b cost=%g) != interpreted (found=%v hidden=%b cost=%g)",
				name, m.Name(), engineB.Found, engineB.Hidden, engineB.Cost, engine.Found, engine.Hidden, engine.Cost)
		}
		if engineB.Stats.Checked+engineB.Stats.Pruned != 1<<sp.K() {
			r.violatef("%s/%s: batched+collapsed engine counters Checked %d + Pruned %d != 2^%d",
				name, m.Name(), engineB.Stats.Checked, engineB.Stats.Pruned, sp.K())
		}

		// Warm-start over the same full configuration (batching plus
		// symmetry): re-solve after a deterministic cost-only edit, once cold
		// and once resuming the batched+collapsed run's frontier. Both runs
		// share the lexicographic tie-break and integer cost keys, so the
		// results must match bit for bit.
		if engineB.Frontier == nil {
			r.violatef("%s/%s: batched+collapsed engine exported no frontier", name, m.Name())
			continue
		}
		ec := warmEdit(sp.Attrs())
		spw := sp.WithCosts(ec.Of)
		coldW, errC := spw.MinCost(compiled, privacy.CompiledSearchOptions(comp, ec, it.Gamma, opts.Search))
		warmOpts := privacy.CompiledSearchOptions(comp, ec, it.Gamma, opts.Search)
		warmOpts.Resume = engineB.Frontier
		warmW, errW := spw.MinCost(compiled, warmOpts)
		r.SolverRuns += 2
		if errC != nil || errW != nil {
			r.violatef("%s/%s: warm-start standalone re-solve failed: cold=%v warm=%v", name, m.Name(), errC, errW)
			continue
		}
		if !warmW.Stats.Resumed {
			r.violatef("%s/%s: standalone engine ignored a matching resume frontier", name, m.Name())
		}
		if warmW.Found != coldW.Found || warmW.Hidden != coldW.Hidden || warmW.Cost != coldW.Cost {
			r.violatef("%s/%s: warm standalone optimum (found=%v hidden=%b cost=%g) != cold (found=%v hidden=%b cost=%g) after a cost edit",
				name, m.Name(), warmW.Found, warmW.Hidden, warmW.Cost, coldW.Found, coldW.Hidden, coldW.Cost)
		}
		if warmW.Stats.Checked+warmW.Stats.Pruned != 1<<sp.K() {
			r.violatef("%s/%s: warm engine counters Checked %d + Pruned %d != 2^%d",
				name, m.Name(), warmW.Stats.Checked, warmW.Stats.Pruned, sp.K())
		}
	}
}

// checkWorlds verifies the assembled optimum against exhaustive
// possible-world semantics and cross-checks the worlds-grounded optimum's
// cost, on instances small enough to enumerate.
func (r *Result) checkWorlds(ctx context.Context, name string, it *gen.Instance, pset *secureview.Problem,
	exact secureview.Solution, opts Options) {
	if it.W.Schema().Len() > opts.WorldsAttrLimit {
		r.Skips++
		return
	}
	initial := relation.NewNameSet(it.W.InitialInputNames()...)
	if len(exact.Hidden.Intersect(initial)) > 0 {
		// The enumerator requires initial inputs visible (Definition 4
		// fixes them); the assembly may legitimately hide one.
		r.Skips++
		return
	}
	rel, err := it.W.Relation(1 << 12)
	if err != nil {
		r.Skips++
		return
	}
	visible := relation.NewNameSet(it.W.Schema().Names()...).Minus(exact.Hidden)
	failed, err := worlds.VerifyPrivateCtx(ctx, it.W, rel, visible, exact.Privatized, nil, it.Gamma, opts.WorldsBudget)
	if err != nil {
		if errors.Is(err, worlds.ErrBudgetExhausted) || cancelled(err) {
			r.Skips++ // instance too large to enumerate within budget (or run cancelled)
		} else {
			r.violatef("%s: worlds verification failed with a non-budget error: %v", name, err)
		}
		return
	}
	if failed != "" {
		r.violatef("%s: assembled optimum leaves %s not %d-workflow-private", name, failed, it.Gamma)
		return
	}
	r.WorldsVerified++

	// The worlds-grounded optimum can only be cheaper than the assembly
	// optimum (Theorem 4 assembles SUFFICIENT conditions), comparable when
	// nothing is privatized.
	if len(it.W.PublicModules()) == 0 {
		hp, err := it.HidingProblem(opts.WorldsBudget)
		if err != nil {
			r.Skips++
			return
		}
		hidden, cost, found, _, err := hp.MinCostHidingCtx(ctx, opts.Search)
		r.SolverRuns++
		if err != nil {
			if errors.Is(err, worlds.ErrBudgetExhausted) || cancelled(err) {
				r.Skips++
			} else {
				r.violatef("%s: worlds min-cost search failed with a non-budget error: %v", name, err)
			}
			return
		}
		if !found {
			r.violatef("%s: worlds search found no safe hiding but assembly optimum %v is workflow-private",
				name, exact.Hidden.Sorted())
			return
		}
		assemblyCost := pset.Cost(exact)
		if cost > assemblyCost+eps(assemblyCost) {
			r.violatef("%s: worlds optimum %g (hide %v) costs MORE than assembly optimum %g (hide %v)",
				name, cost, hidden.Sorted(), assemblyCost, exact.Hidden.Sorted())
		}
	}
}
