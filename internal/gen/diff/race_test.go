package diff

import (
	"sync"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/search"
)

// TestGeneratedSharedOracleRace is the differential race check: one
// generated instance, one compiled oracle per private module, shared
// simultaneously by several full engine runs (each with its own worker
// pool). Under `go test -race` (the CI race step covers this package) any
// unsynchronized state inside the compiled oracle or the engine shows up
// here; without -race it still asserts that all concurrent runs return the
// byte-identical optimum.
func TestGeneratedSharedOracleRace(t *testing.T) {
	it := gen.MustNew(gen.Config{Topology: gen.Layered, Layers: 2, Width: 2, FanIn: 2, FanOut: 2, Share: 2}, 5)
	for _, m := range it.W.PrivateModules() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			mv := privacy.NewModuleView(m)
			comp, err := mv.Compile()
			if err != nil {
				t.Fatal(err)
			}
			sp, err := search.NewSpace(mv.Attrs(), it.Costs.Of)
			if err != nil {
				t.Fatal(err)
			}
			compiled := func(v search.Mask) (bool, error) {
				return comp.IsSafe(oracle.Mask(v), it.Gamma), nil
			}
			const concurrent = 6
			results := make([]search.Result, concurrent)
			errs := make([]error, concurrent)
			var wg sync.WaitGroup
			for i := 0; i < concurrent; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = sp.MinCost(compiled, search.Options{})
				}(i)
			}
			wg.Wait()
			for i := 1; i < concurrent; i++ {
				if errs[i] != nil || errs[0] != nil {
					t.Fatalf("run %d: %v / %v", i, errs[i], errs[0])
				}
				if results[i].Found != results[0].Found ||
					results[i].Hidden != results[0].Hidden ||
					results[i].Cost != results[0].Cost {
					t.Fatalf("concurrent run %d optimum (found=%v hidden=%b cost=%g) != run 0 (found=%v hidden=%b cost=%g)",
						i, results[i].Found, results[i].Hidden, results[i].Cost,
						results[0].Found, results[0].Hidden, results[0].Cost)
				}
			}
		})
	}
}
