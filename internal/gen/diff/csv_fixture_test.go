package diff_test

import (
	"os"
	"path/filepath"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/gen/diff"
	"secureview/internal/secureview"
	"secureview/internal/spec"
)

// loadFixture reads one committed workflow-spec + provenance-CSV pair from
// internal/gen's testdata.
func loadFixture(t *testing.T, name string) *gen.CSVRef {
	t.Helper()
	dir := filepath.Join("..", "testdata")
	raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, name+".csv"))
	if err != nil {
		t.Fatal(err)
	}
	return &gen.CSVRef{Spec: doc, Data: string(data)}
}

// TestCSVFixtures drives the provenance-CSV importer path end to end on
// the committed real-shaped workflow fixtures: CSV -> InstanceRef ->
// partial-log derivation -> differential-harness invariants.
func TestCSVFixtures(t *testing.T) {
	for _, name := range []string{"genomics", "etl"} {
		t.Run(name, func(t *testing.T) {
			ref := gen.InstanceRef{CSV: loadFixture(t, name)}
			rv, err := gen.Resolve(ref)
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if rv.Instance.Recorded == nil {
				t.Fatal("CSV resolution did not attach the recorded log")
			}
			full := uint64(1)
			for _, a := range rv.Instance.W.InitialInputs() {
				full *= uint64(a.Domain)
			}
			if uint64(rv.Instance.Recorded.Len()) >= full {
				t.Fatalf("fixture log is not partial: %d rows over %d executions", rv.Instance.Recorded.Len(), full)
			}
			p, err := rv.Derive()
			if err != nil {
				t.Fatalf("derive: %v", err)
			}
			if err := p.Validate(secureview.Set); err != nil {
				t.Fatalf("derived problem invalid: %v", err)
			}
			if len(p.UsefulAttributes(secureview.Set)) == 0 {
				t.Fatal("derived problem has no useful attributes")
			}

			r := diff.CheckRef(ref, diff.Options{})
			if len(r.Violations) > 0 {
				t.Fatalf("harness violations: %v", r.Violations)
			}
			if r.Exact == 0 {
				t.Fatal("harness anchored no exact optimum on the fixture")
			}
		})
	}
}

// TestCSVFixtureRejectsForeignLog: rows that are not provenance of the
// fixture workflow must fail the import, not silently derive.
func TestCSVFixtureRejectsForeignLog(t *testing.T) {
	ref := loadFixture(t, "genomics")
	// align is xor(reads, ref), so reads=0, ref=0 must produce bam=0 — this
	// row claims bam=1.
	ref.Data = "reads,ref,bam,variants,report\n0,0,1,0,0\n"
	if _, err := gen.Resolve(gen.InstanceRef{CSV: ref}); err == nil {
		t.Fatal("inconsistent log resolved")
	}
}
