package diff

// Mega-regime smoke: the harness's certified-approximation matrix must come
// back clean on every mega class — exact declines typed (counted as skips,
// never violations), the approximation tier and the portfolio certify — and
// on small instances CheckMega must still anchor against the exact optimum.

import (
	"testing"
	"time"

	"secureview/internal/gen"
	"secureview/internal/secureview"
)

func TestMegaSmoke(t *testing.T) {
	for _, pc := range gen.MegaProblemClasses() {
		for seed := int64(1); seed <= 2; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			if k := len(p.UsefulAttributes(secureview.Set)); k < 40 {
				t.Fatalf("%s/%d: universe %d is not mega (want ≥ 40)", pc.Name, seed, k)
			}
			start := time.Now()
			r := CheckMega(pc.Name, p, Options{})
			elapsed := time.Since(start)
			for _, v := range r.Violations {
				t.Errorf("%s/%d: %s", pc.Name, seed, v)
			}
			if r.Exact != 0 {
				t.Errorf("%s/%d: exact solver finished on a mega instance", pc.Name, seed)
			}
			if r.Skips == 0 {
				t.Errorf("%s/%d: exact's typed decline was not counted as a skip", pc.Name, seed)
			}
			// One exact probe plus at least the set-cover route and the
			// portfolio per valid variant.
			if r.SolverRuns < 3 {
				t.Errorf("%s/%d: only %d solver runs", pc.Name, seed, r.SolverRuns)
			}
			if elapsed > 20*time.Second {
				t.Errorf("%s/%d: CheckMega took %v", pc.Name, seed, elapsed)
			}
		}
	}
}

// TestMegaAnchorsOnSmallInstances: small instances remain legal CheckMega
// inputs — exact finishes and becomes the anchor, and the certified matrix
// still comes back clean against it.
func TestMegaAnchorsOnSmallInstances(t *testing.T) {
	for _, pc := range gen.ProblemClasses() {
		p := gen.Problem(pc.Cfg, 1)
		r := CheckMega(pc.Name, p, Options{})
		for _, v := range r.Violations {
			t.Errorf("%s: %s", pc.Name, v)
		}
		if r.Exact != 1 {
			t.Errorf("%s: exact did not anchor a small instance", pc.Name)
		}
	}
}
