package gen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/secureview"
)

// CanonicalBytes serializes the instance deterministically: config, seed,
// Γ, every module's interface, visibility and full truth table (inputs in
// mixed-radix order), then all costs in schema order. Two instances are the
// same scenario iff their canonical bytes are equal, which is what the
// reproducibility guarantee ("same seed, byte-identical instance") is
// asserted against.
func (it *Instance) CanonicalBytes() ([]byte, error) {
	var b bytes.Buffer
	cfg := it.Cfg
	fmt.Fprintf(&b, "gen/v1 seed=%d topo=%s modules=%d layers=%dx%d fan=%d/%d dom=%d share=%d pub=%.17g funcs=%s costs=%s maxcost=%.17g gamma=%d\n",
		it.Seed, cfg.Topology, cfg.Modules, cfg.Layers, cfg.Width, cfg.FanIn, cfg.FanOut,
		cfg.Domain, cfg.Share, cfg.PublicFrac, cfg.Funcs, cfg.Costs, cfg.MaxCost, it.Gamma)
	fmt.Fprintf(&b, "workflow %s\n", it.W.Name())
	for _, m := range it.W.Modules() {
		fmt.Fprintf(&b, "module %s %s in=", m.Name(), m.Visibility())
		writeAttrs(&b, m.Inputs())
		b.WriteString(" out=")
		writeAttrs(&b, m.Outputs())
		b.WriteByte('\n')
		size, ok := m.InputDomainSize()
		if !ok || size > 1<<12 {
			return nil, fmt.Errorf("gen: module %s domain too large to serialize", m.Name())
		}
		var evalErr error
		relation.EachTuple(m.InputSchema(), func(x relation.Tuple) bool {
			y, err := m.Eval(x)
			if err != nil {
				evalErr = err
				return false
			}
			fmt.Fprintf(&b, " %v->%v\n", []relation.Value(x), []relation.Value(y))
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
	}
	for _, a := range it.W.Schema().Names() {
		fmt.Fprintf(&b, "cost %s=%.17g\n", a, it.Costs[a])
	}
	for _, m := range it.W.PublicModules() {
		fmt.Fprintf(&b, "privatize %s=%.17g\n", m.Name(), it.PrivatizeCosts[m.Name()])
	}
	return b.Bytes(), nil
}

func writeAttrs(b *bytes.Buffer, attrs []relation.Attribute) {
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s:%d", a.Name, a.Domain)
	}
}

// Fingerprint returns the hex SHA-256 of CanonicalBytes.
func (it *Instance) Fingerprint() (string, error) {
	raw, err := it.CanonicalBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// ProblemCanonicalBytes serializes an abstract instance deterministically:
// modules in order with visibility, interfaces and requirement lists, then
// costs sorted by attribute name.
func ProblemCanonicalBytes(p *secureview.Problem) []byte {
	var b bytes.Buffer
	b.WriteString("gen-problem/v1\n")
	for _, m := range p.Modules {
		vis := module.Private
		if m.Public {
			vis = module.Public
		}
		fmt.Fprintf(&b, "module %s %s in=%v out=%v priv=%.17g\n",
			m.Name, vis, m.Inputs, m.Outputs, m.PrivatizeCost)
		for _, r := range m.SetList {
			fmt.Fprintf(&b, " set in=%v out=%v\n", r.In, r.Out)
		}
		for _, r := range m.CardList {
			fmt.Fprintf(&b, " card a=%d b=%d\n", r.Alpha, r.Beta)
		}
	}
	names := make([]string, 0, len(p.Costs))
	for a := range p.Costs {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		fmt.Fprintf(&b, "cost %s=%.17g\n", a, p.Costs[a])
	}
	return b.Bytes()
}

// ProblemFingerprint returns the hex SHA-256 of ProblemCanonicalBytes.
func ProblemFingerprint(p *secureview.Problem) string {
	sum := sha256.Sum256(ProblemCanonicalBytes(p))
	return hex.EncodeToString(sum[:])
}
