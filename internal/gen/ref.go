package gen

// InstanceRef is the canonical instance pipeline: one reference type naming
// a Secure-View instance from ANY source, resolved by one function
// (Resolve) that every consumer — the differential harness, the server
// request forms, the load generator, the bench sweeps, cmd/secureview —
// shares. Sources: generated class+seed, inline spec document, provenance
// CSV import, and committed corpus ID.

import (
	"fmt"
	"strings"

	"secureview/internal/privacy"
	"secureview/internal/provenance"
	"secureview/internal/secureview"
	"secureview/internal/spec"
)

// InstanceRef names an instance from exactly one source. The JSON form is
// the wire shape the server's request types embed.
type InstanceRef struct {
	// Class + Seed name a generated instance: a workflow topology class
	// (Classes) or an abstract problem class (ProblemClasses /
	// MegaProblemClasses).
	Class string `json:"class,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Spec is an inline workflow document.
	Spec *spec.Document `json:"spec,omitempty"`
	// CSV imports a recorded provenance log: the workflow comes from
	// CSV.Spec, the executions from CSV.Data. Requirement lists then derive
	// from the recorded projection (partial-log semantics — the view is
	// only guaranteed for that log).
	CSV *CSVRef `json:"csv,omitempty"`
	// Corpus is a committed hard-instance corpus entry ID
	// (internal/gen/corpus); any unambiguous ID prefix resolves.
	Corpus string `json:"corpus,omitempty"`
	// Gamma, when > 0, overrides the source's privacy requirement.
	// Workflow-backed sources only; abstract problem classes carry their
	// requirement lists directly.
	Gamma uint64 `json:"gamma,omitempty"`
}

// CSVRef pairs a workflow document with a CSV log of its executions.
type CSVRef struct {
	// Spec describes the workflow the log belongs to.
	Spec *spec.Document `json:"spec"`
	// Data is the CSV text, one full provenance tuple per row over the
	// workflow schema (the provenance.ExportCSV shape). Rows are replayed
	// against the workflow and rejected if inconsistent with its
	// functionality.
	Data string `json:"data"`
}

// Resolved is the outcome of resolving an InstanceRef: exactly one of
// Instance (workflow-backed sources: generated classes, spec documents, CSV
// imports, corpus entries) and Problem (abstract problem classes) is set.
type Resolved struct {
	// Name identifies the source for display: "chain/7", "spec:demo",
	// "csv:demo", "corpus:2f1a03c9e4b1", "problem:shared/3".
	Name     string
	Instance *Instance
	Problem  *secureview.Problem
}

// Derive returns the set-constraint problem of the resolved instance,
// whatever its source.
func (r *Resolved) Derive() (*secureview.Problem, error) {
	if r.Problem != nil {
		return r.Problem, nil
	}
	return r.Instance.Derive()
}

// corpusResolver is the hook internal/gen/corpus registers at init. It
// lives here (not as a gen → corpus import) so corpus can embed gen.Config
// documents without an import cycle; consumers that want corpus IDs to
// resolve import internal/gen/corpus for its side effect.
var corpusResolver func(id string) (*Instance, error)

// RegisterCorpusResolver installs the corpus-ID resolver. Called from
// internal/gen/corpus's init; last registration wins.
func RegisterCorpusResolver(f func(id string) (*Instance, error)) {
	corpusResolver = f
}

// sourceCount counts the reference's populated sources.
func (ref InstanceRef) sourceCount() int {
	n := 0
	if ref.Class != "" {
		n++
	}
	if ref.Spec != nil {
		n++
	}
	if ref.CSV != nil {
		n++
	}
	if ref.Corpus != "" {
		n++
	}
	return n
}

// Resolve materializes the reference. Exactly one source must be set; the
// error message always lists the known class names so callers can surface
// it to users directly.
func Resolve(ref InstanceRef) (*Resolved, error) {
	if n := ref.sourceCount(); n != 1 {
		return nil, fmt.Errorf("gen: instance ref must set exactly one of class, spec, csv, corpus (got %d)", n)
	}
	switch {
	case ref.Spec != nil:
		return resolveSpec(ref)
	case ref.CSV != nil:
		return resolveCSV(ref)
	case ref.Corpus != "":
		return resolveCorpus(ref)
	default:
		return resolveClass(ref)
	}
}

func resolveClass(ref InstanceRef) (*Resolved, error) {
	for _, c := range Classes() {
		if c.Name != ref.Class {
			continue
		}
		cfg := c.Cfg
		if ref.Gamma > 0 {
			cfg.Gamma = ref.Gamma
		}
		it, err := New(cfg, ref.Seed)
		if err != nil {
			return nil, err
		}
		return &Resolved{Name: fmt.Sprintf("%s/%d", c.Name, ref.Seed), Instance: it}, nil
	}
	for _, c := range append(ProblemClasses(), MegaProblemClasses()...) {
		if c.Name == ref.Class {
			// Abstract instances carry their requirement lists directly; Γ
			// does not apply.
			return &Resolved{
				Name:    fmt.Sprintf("problem:%s/%d", c.Name, ref.Seed),
				Problem: Problem(c.Cfg, ref.Seed),
			}, nil
		}
	}
	return nil, fmt.Errorf("gen: unknown class %q (workflow classes: %v; problem classes: %v)",
		ref.Class, ClassNames(), ProblemClassNames())
}

func resolveSpec(ref InstanceRef) (*Resolved, error) {
	it, err := specInstance(ref.Spec, ref.Gamma)
	if err != nil {
		return nil, err
	}
	return &Resolved{Name: "spec:" + ref.Spec.Name, Instance: it}, nil
}

// specInstance builds the workflow instance of a document: uniform costs
// when the document carries none, Γ from (override, document, default 2).
func specInstance(doc *spec.Document, gammaOverride uint64) (*Instance, error) {
	if len(doc.GammaPerModule) > 0 {
		return nil, fmt.Errorf("gen: gammaPerModule documents are not resolvable (one Γ per instance)")
	}
	w, err := doc.Build()
	if err != nil {
		return nil, err
	}
	gamma := gammaOverride
	if gamma == 0 {
		gamma = doc.Gamma
	}
	if gamma == 0 {
		gamma = 2
	}
	costs := privacy.Costs(doc.Costs)
	if len(costs) == 0 {
		costs = privacy.Uniform(w.Schema().Names()...)
	}
	return &Instance{
		W:              w,
		Costs:          costs,
		PrivatizeCosts: doc.PrivatizeCosts,
		Gamma:          gamma,
	}, nil
}

func resolveCSV(ref InstanceRef) (*Resolved, error) {
	c := ref.CSV
	if c.Spec == nil {
		return nil, fmt.Errorf("gen: csv ref needs a spec document describing the workflow")
	}
	it, err := specInstance(c.Spec, ref.Gamma)
	if err != nil {
		return nil, err
	}
	// Import through the provenance store so every row is replayed against
	// the workflow functionality — a log that is not provenance of this
	// workflow is rejected, not silently analyzed.
	store := provenance.NewStore(it.W)
	if err := store.ImportCSV(strings.NewReader(c.Data)); err != nil {
		return nil, fmt.Errorf("gen: importing csv log: %w", err)
	}
	if store.Size() == 0 {
		return nil, fmt.Errorf("gen: csv log holds no executions")
	}
	it.Recorded = store.Relation()
	return &Resolved{Name: "csv:" + c.Spec.Name, Instance: it}, nil
}

func resolveCorpus(ref InstanceRef) (*Resolved, error) {
	if corpusResolver == nil {
		return nil, fmt.Errorf("gen: corpus IDs are not resolvable here (import secureview/internal/gen/corpus)")
	}
	it, err := corpusResolver(ref.Corpus)
	if err != nil {
		return nil, err
	}
	if ref.Gamma > 0 {
		it.Gamma = ref.Gamma
	}
	return &Resolved{Name: "corpus:" + ref.Corpus, Instance: it}, nil
}

// ClassNames lists the workflow topology class names.
func ClassNames() []string {
	var out []string
	for _, c := range Classes() {
		out = append(out, c.Name)
	}
	return out
}

// ProblemClassNames lists the abstract class names (regular then mega).
func ProblemClassNames() []string {
	var out []string
	for _, c := range append(ProblemClasses(), MegaProblemClasses()...) {
		out = append(out, c.Name)
	}
	return out
}
