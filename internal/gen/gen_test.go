package gen

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"secureview/internal/secureview"
)

// TestSameSeedByteIdentical is the reproducibility guarantee: for every
// canonical class and several seeds, regenerating with the same seed —
// including under a different GOMAXPROCS setting and concurrently from
// several goroutines — yields byte-identical canonical serializations.
func TestSameSeedByteIdentical(t *testing.T) {
	for _, cl := range Classes() {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				want, err := MustNew(cl.Cfg, seed).CanonicalBytes()
				if err != nil {
					t.Fatal(err)
				}
				prev := runtime.GOMAXPROCS(1)
				got, err := MustNew(cl.Cfg, seed).CanonicalBytes()
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("seed %d: GOMAXPROCS=1 regeneration differs", seed)
				}
				var wg sync.WaitGroup
				results := make([][]byte, 4)
				for i := range results {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						results[i], _ = MustNew(cl.Cfg, seed).CanonicalBytes()
					}(i)
				}
				wg.Wait()
				for i, r := range results {
					if !bytes.Equal(want, r) {
						t.Fatalf("seed %d: concurrent regeneration %d differs", seed, i)
					}
				}
			}
		})
	}
	for _, pc := range ProblemClasses() {
		pc := pc
		t.Run("problem/"+pc.Name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				a := ProblemCanonicalBytes(Problem(pc.Cfg, seed))
				b := ProblemCanonicalBytes(Problem(pc.Cfg, seed))
				if !bytes.Equal(a, b) {
					t.Fatalf("seed %d: regeneration differs", seed)
				}
			}
		})
	}
}

// TestDistinctSeedsDiffer guards against the generator ignoring its seed.
func TestDistinctSeedsDiffer(t *testing.T) {
	for _, cl := range Classes() {
		a, err := MustNew(cl.Cfg, 1).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		b, err := MustNew(cl.Cfg, 2).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Errorf("class %s: seeds 1 and 2 collide", cl.Name)
		}
	}
}

// TestGeneratedWorkflowsValid checks structural invariants of every class:
// the workflow builds, respects the Share cap, has at least one private
// module, every attribute is costed, and the injective/constant kinds
// deliver what they promise.
func TestGeneratedWorkflowsValid(t *testing.T) {
	for _, cl := range Classes() {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				it := MustNew(cl.Cfg, seed)
				cfg := it.Cfg
				if got := it.W.DataSharing(); got > cfg.Share {
					t.Fatalf("seed %d: data sharing %d exceeds cap %d", seed, got, cfg.Share)
				}
				if len(it.W.PrivateModules()) == 0 {
					t.Fatalf("seed %d: no private modules", seed)
				}
				for _, a := range it.W.Schema().Names() {
					if _, ok := it.Costs[a]; !ok {
						t.Fatalf("seed %d: attribute %q has no cost", seed, a)
					}
				}
				for _, m := range it.W.PublicModules() {
					if _, ok := it.PrivatizeCosts[m.Name()]; !ok {
						t.Fatalf("seed %d: public module %q has no privatize cost", seed, m.Name())
					}
				}
			}
		})
	}
}

func TestInjectiveKindIsInjective(t *testing.T) {
	cfg := Config{Topology: Chain, Modules: 3, FanIn: 2, FanOut: 2, Funcs: Injective}
	for seed := int64(0); seed < 5; seed++ {
		it := MustNew(cfg, seed)
		for _, m := range it.W.Modules() {
			if !m.IsOneToOne() {
				t.Fatalf("seed %d: module %s not injective", seed, m.Name())
			}
		}
	}
}

func TestConstantHeavyKindHasSmallRange(t *testing.T) {
	cfg := Config{Topology: Chain, Modules: 3, FanIn: 2, FanOut: 2, Funcs: ConstantHeavy}
	for seed := int64(0); seed < 5; seed++ {
		it := MustNew(cfg, seed)
		for _, m := range it.W.Modules() {
			r, err := m.Relation().Project(m.OutputNames())
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() > 2 {
				t.Fatalf("seed %d: module %s has %d distinct outputs, want <=2", seed, m.Name(), r.Len())
			}
		}
	}
}

// TestGeneratedProblemsValid checks that every abstract class yields
// instances valid in BOTH constraint variants, with costs for every
// attribute and bounded sharing.
func TestGeneratedProblemsValid(t *testing.T) {
	for _, pc := range ProblemClasses() {
		pc := pc
		t.Run(pc.Name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				p := Problem(pc.Cfg, seed)
				if err := p.Validate(secureview.Set); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := p.Validate(secureview.Cardinality); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				cfg := pc.Cfg.withDefaults()
				if got := p.DataSharing(); got > cfg.Share {
					t.Fatalf("seed %d: sharing %d exceeds cap %d", seed, got, cfg.Share)
				}
				for _, a := range p.Attributes() {
					if _, ok := p.Costs[a]; !ok {
						t.Fatalf("seed %d: attribute %q has no cost", seed, a)
					}
				}
			}
		})
	}
}

// TestDeriveFromGenerated drives each class through the set-constraint
// assembly; classes may be infeasible at Γ for some seeds (no safe
// subsets), but at least one seed per class must derive.
func TestDeriveFromGenerated(t *testing.T) {
	for _, cl := range Classes() {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			derived := 0
			for seed := int64(0); seed < 6; seed++ {
				it := MustNew(cl.Cfg, seed)
				p, err := it.Derive()
				if err != nil {
					continue
				}
				if err := p.Validate(secureview.Set); err != nil {
					t.Fatalf("seed %d: derived instance invalid: %v", seed, err)
				}
				derived++
			}
			if derived == 0 {
				t.Fatalf("class %s: no seed derived a feasible instance", cl.Name)
			}
		})
	}
}

// TestQuickSingletonProblemSolvable ports the legacy workload property onto
// the folded generator: random singleton-requirement instances validate in
// both variants, every solver is feasible, and exact ≤ greedy.
func TestQuickSingletonProblemSolvable(t *testing.T) {
	f := func(seed int64) bool {
		cfg := ProblemConfig{
			Modules:    2 + int(uint64(seed)%5),
			MaxInputs:  1 + int(uint64(seed)%3),
			Share:      2,
			Singletons: true,
		}
		p := Problem(cfg, seed)
		if p.Validate(secureview.Set) != nil || p.Validate(secureview.Cardinality) != nil {
			return false
		}
		exact, err := secureview.ExactSet(p, 1<<20)
		if err != nil || !p.Feasible(exact, secureview.Set) {
			return false
		}
		greedy := secureview.Greedy(p, secureview.Set)
		if !p.Feasible(greedy, secureview.Set) {
			return false
		}
		return p.Cost(exact) <= p.Cost(greedy)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGoldenFingerprints pins one fingerprint per topology so accidental
// generator changes (which would silently reshuffle every downstream
// experiment and benchmark) fail loudly across commits, not just within a
// process. math/rand documents rand.NewSource streams as reproducible, so
// these are stable; update them only when the generator changes ON PURPOSE.
func TestGoldenFingerprints(t *testing.T) {
	golden := map[Topology]string{
		Chain:   "d0b3fe51c99125b1d2301f23c367a80ee7c29721c860a38fc16ea8ae9e137763",
		Tree:    "e1c8ff28e4b3768eacad286b701e59f745e89e95f26a6dfdc618b3901a4314e4",
		Layered: "c5f84bbbfda292ed2f6b89f6a0b8d48894194fa33ca82b4de134e5773d387976",
	}
	for topo, want := range golden {
		it := MustNew(Config{Topology: topo}, 7)
		got, err := it.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s seed 7: fingerprint %s, want %s (generator output changed)", topo, got, want)
		}
	}
}
