package corpus

// The adversarial miner: a deterministic hill-climb over gen.Config space
// whose objective is the engine solver's single-worker safety-test count
// (Checked) on the derived set-constraint problem. Checked is a
// machine-independent proxy for engine runtime — it counts the candidates
// the pruned search could NOT eliminate, so climbing it finds instances
// that defeat the engine's cost-bound, domination and symmetry pruning.
// Every evaluation also cross-checks the engine optimum against the exact
// solver; any cost disagreement is kept unconditionally as a bug
// reproducer.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"secureview/internal/gen"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// MineOptions tunes one mining run. The zero value is usable.
type MineOptions struct {
	// Steps is the number of mutation steps per seed class (default 40).
	Steps int
	// Seed drives the mutation stream; the same (Seed, Steps, Classes)
	// always mines the same candidates (default 1).
	Seed int64
	// MaxK caps the derived problem's useful-attribute count so every
	// candidate stays replayable by the exact tier and the differential
	// harness (default 14).
	MaxK int
	// PerEval bounds one candidate evaluation; candidates that blow the
	// budget are rejected, keeping the climb inside affordable space
	// (default 10s).
	PerEval time.Duration
	// Classes are the climb starting points (default gen.Classes()).
	Classes []gen.Class
	// MinChecked drops candidates below this objective from the result
	// (default 0: keep everything, including the seed-class baselines).
	MinChecked int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.Steps <= 0 {
		o.Steps = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxK <= 0 {
		o.MaxK = 14
	}
	if o.PerEval <= 0 {
		o.PerEval = 10 * time.Second
	}
	if o.Classes == nil {
		o.Classes = gen.Classes()
	}
	return o
}

// Evaluate scores one (cfg, seed) candidate: it generates the instance,
// derives the set-constraint problem, runs the engine single-worker (the
// deterministic objective), and cross-checks the optimum against the exact
// solver. Errors mean "not a usable candidate" (infeasible at Γ, too
// large, engine-unsupported, over budget) — the climb just moves on.
func Evaluate(ctx context.Context, cfg gen.Config, seed int64, maxK int, timeout time.Duration) (Entry, error) {
	it, err := gen.New(cfg, seed)
	if err != nil {
		return Entry{}, err
	}
	p, err := it.Derive()
	if err != nil {
		return Entry{}, err
	}
	k := len(p.UsefulAttributes(secureview.Set))
	if k == 0 || k > maxK {
		return Entry{}, fmt.Errorf("corpus: k=%d outside (0, %d]", k, maxK)
	}
	eng, ok := solve.Get("engine")
	if !ok {
		return Entry{}, fmt.Errorf("corpus: engine solver not registered")
	}
	if err := eng.Supports(p, secureview.Set); err != nil {
		return Entry{}, err
	}
	res, err := solve.Solve(ctx, "engine", p, solve.Options{
		Variant: secureview.Set, Workers: 1, Timeout: timeout,
	})
	if err != nil {
		return Entry{}, err
	}
	fp, err := it.Fingerprint()
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		ID:          fp[:12],
		Fingerprint: fp,
		Cfg:         it.Cfg,
		Seed:        seed,
		Checked:     res.Counters.Checked,
		K:           k,
	}
	ex, exErr := solve.Solve(ctx, "exact", p, solve.Options{
		Variant: secureview.Set, Timeout: timeout,
	})
	if exErr == nil {
		if d := res.Cost - ex.Cost; d > 1e-9 || d < -1e-9 {
			e.Disagree = true
			e.Notes = fmt.Sprintf("engine cost %g != exact cost %g", res.Cost, ex.Cost)
		}
	}
	return e, nil
}

// Mine hill-climbs each seed class for Steps mutations and returns the
// fingerprint-deduped candidates, hardest first: the seed-class baselines,
// every accepted improvement, and every disagreement reproducer
// (disagreements are kept even when they are not improvements). The run is
// deterministic in MineOptions — the objective counts safety tests, never
// wall-clock.
func Mine(ctx context.Context, opts MineOptions) ([]Entry, error) {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	var out []Entry
	for _, cl := range o.Classes {
		cfg, seed := cl.Cfg, int64(1)
		best := 0
		if cur, err := Evaluate(ctx, cfg, seed, o.MaxK, o.PerEval); err == nil {
			cur.Source = "seed:" + cl.Name
			out = append(out, cur)
			best = cur.Checked
			cfg = cur.Cfg // defaults filled in, so later mutations see real values
		}
		for step := 0; step < o.Steps; step++ {
			if err := ctx.Err(); err != nil {
				return finish(out, o.MinChecked), err
			}
			ncfg, nseed := mutate(cfg, seed, rng)
			cand, err := Evaluate(ctx, ncfg, nseed, o.MaxK, o.PerEval)
			if err != nil {
				continue
			}
			cand.Source = fmt.Sprintf("climb:%s/step%d", cl.Name, step)
			if cand.Disagree {
				out = append(out, cand)
			}
			if cand.Checked > best {
				best = cand.Checked
				cfg, seed = cand.Cfg, nseed
				if !cand.Disagree {
					out = append(out, cand)
				}
			}
		}
	}
	return finish(out, o.MinChecked), nil
}

// finish dedups, filters and orders a mining result (disagreements are
// exempt from the MinChecked filter).
func finish(entries []Entry, minChecked int) []Entry {
	entries = Dedup(entries)
	kept := entries[:0:0]
	for _, e := range entries {
		if e.Checked >= minChecked || e.Disagree {
			kept = append(kept, e)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Checked > kept[j].Checked })
	return kept
}

// mutate proposes one neighbouring configuration: a single knob nudged, or
// a re-seed. Pure function of the rng stream.
func mutate(cfg gen.Config, seed int64, rng *rand.Rand) (gen.Config, int64) {
	c, s := cfg, seed
	switch rng.Intn(12) {
	case 0:
		c.Modules = clamp(c.Modules+pm(rng), 2, 8)
	case 1:
		c.Layers = clamp(c.Layers+pm(rng), 1, 3)
	case 2:
		c.Width = clamp(c.Width+pm(rng), 1, 3)
	case 3:
		c.FanIn = clamp(c.FanIn+pm(rng), 1, 3)
	case 4:
		c.FanOut = clamp(c.FanOut+pm(rng), 1, 3)
	case 5:
		c.Domain = 2 + rng.Intn(2)
	case 6:
		c.Share = clamp(c.Share+pm(rng), 1, 4)
	case 7:
		c.Funcs = gen.FuncKind(rng.Intn(4))
	case 8:
		c.Costs = gen.CostModel(rng.Intn(3))
	case 9:
		c.Gamma = uint64(2 + rng.Intn(2))
	case 10:
		c.Topology = gen.Topology(rng.Intn(3))
	default:
		s = int64(rng.Intn(64))
	}
	return c, s
}

// pm draws ±1.
func pm(rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
