// Package corpus is the committed hard-instance corpus: generated
// configurations that the adversarial miner (Mine, cmd/secureview-mine)
// found to be measurably harder for the engine solver than every canonical
// gen class at comparable size, plus any cross-solver disagreements it ever
// surfaces (bug reproducers). Entries are fingerprint-deduped and fully
// deterministic — each one is just a (gen.Config, seed) pair, so replaying
// an entry regenerates the byte-identical instance on any machine.
//
// The corpus ships embedded in the binary (corpus.json). Importing this
// package registers a resolver with internal/gen, after which
// gen.InstanceRef{Corpus: id} resolves; the differential harness and CI
// replay every entry on every run.
package corpus

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"secureview/internal/gen"
)

//go:embed corpus.json
var corpusJSON []byte

// Entry is one committed instance: the generating configuration, its
// canonical fingerprint, and the mining metrics that earned it a slot.
type Entry struct {
	// ID is the first 12 hex digits of Fingerprint — the stable name used
	// in InstanceRefs, URLs and CLI flags.
	ID string `json:"id"`
	// Fingerprint is the full SHA-256 of the instance's canonical bytes;
	// replays verify it so a generator change cannot silently swap the
	// corpus out from under its hardness claims.
	Fingerprint string     `json:"fingerprint"`
	Cfg         gen.Config `json:"cfg"`
	Seed        int64      `json:"seed"`
	// Source records provenance: the seed class the climb started from.
	Source string `json:"source"`
	// Notes is free-form ("hardest chain descendant", "exact/engine cost
	// disagreement", ...).
	Notes string `json:"notes,omitempty"`
	// Checked is the engine solver's deterministic single-worker
	// safety-test count on the derived set-constraint problem — the
	// machine-independent hardness objective the miner climbs.
	Checked int `json:"checked"`
	// K is the useful-attribute count of the derived set problem.
	K int `json:"k"`
	// Disagree marks entries that reproduced a cross-solver cost
	// disagreement when mined. The diff harness must NOT reproduce the
	// disagreement anymore once the underlying bug is fixed; the entry
	// stays as a regression guard.
	Disagree bool `json:"disagree,omitempty"`
}

// Instance regenerates the entry's instance and verifies its fingerprint.
func (e Entry) Instance() (*gen.Instance, error) {
	it, err := gen.New(e.Cfg, e.Seed)
	if err != nil {
		return nil, fmt.Errorf("corpus: regenerating %s: %w", e.ID, err)
	}
	fp, err := it.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("corpus: fingerprinting %s: %w", e.ID, err)
	}
	if fp != e.Fingerprint {
		return nil, fmt.Errorf("corpus: entry %s regenerated with fingerprint %s, want %s (generator changed; re-mine or drop the entry)",
			e.ID, fp, e.Fingerprint)
	}
	return it, nil
}

var (
	loadOnce sync.Once
	loaded   []Entry
	loadErr  error
)

// Entries returns the committed corpus sorted by descending Checked
// (hardest first). The slice is shared; do not mutate.
func Entries() []Entry {
	loadOnce.Do(func() {
		loadErr = json.Unmarshal(corpusJSON, &loaded)
		if loadErr == nil {
			sort.SliceStable(loaded, func(i, j int) bool { return loaded[i].Checked > loaded[j].Checked })
		}
	})
	if loadErr != nil {
		panic(fmt.Sprintf("corpus: embedded corpus.json is invalid: %v", loadErr))
	}
	return loaded
}

// Get resolves an entry by ID or unique ID prefix.
func Get(id string) (Entry, error) {
	if id == "" {
		return Entry{}, fmt.Errorf("corpus: empty ID")
	}
	var hits []Entry
	for _, e := range Entries() {
		if e.ID == id {
			return e, nil
		}
		if strings.HasPrefix(e.ID, id) {
			hits = append(hits, e)
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return Entry{}, fmt.Errorf("corpus: no entry %q (have %d entries; see IDs())", id, len(Entries()))
	default:
		var ids []string
		for _, h := range hits {
			ids = append(ids, h.ID)
		}
		return Entry{}, fmt.Errorf("corpus: ID prefix %q is ambiguous: %v", id, ids)
	}
}

// IDs lists the corpus entry IDs, hardest first.
func IDs() []string {
	out := make([]string, 0, len(Entries()))
	for _, e := range Entries() {
		out = append(out, e.ID)
	}
	return out
}

// Dedup drops entries sharing a fingerprint (first wins) — the invariant
// the committed file maintains and the miner applies before writing.
func Dedup(entries []Entry) []Entry {
	seen := make(map[string]bool, len(entries))
	out := entries[:0:0]
	for _, e := range entries {
		if seen[e.Fingerprint] {
			continue
		}
		seen[e.Fingerprint] = true
		out = append(out, e)
	}
	return out
}

func init() {
	gen.RegisterCorpusResolver(func(id string) (*gen.Instance, error) {
		e, err := Get(id)
		if err != nil {
			return nil, err
		}
		return e.Instance()
	})
}
