package corpus

import (
	"context"
	"reflect"
	"testing"
	"time"

	"secureview/internal/gen"
	"secureview/internal/gen/diff"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// TestCorpusCommitted checks the committed file's structural invariants:
// enough entries to be a corpus, fingerprint-deduped, and every entry
// regenerable to its recorded fingerprint and mining metrics.
func TestCorpusCommitted(t *testing.T) {
	entries := Entries()
	if len(entries) < 20 {
		t.Fatalf("committed corpus holds %d entries, want >= 20", len(entries))
	}
	if d := Dedup(entries); len(d) != len(entries) {
		t.Fatalf("committed corpus has duplicate fingerprints: %d entries, %d unique", len(entries), len(d))
	}
	ids := make(map[string]bool, len(entries))
	for _, e := range entries {
		if ids[e.ID] {
			t.Fatalf("duplicate corpus ID %s", e.ID)
		}
		ids[e.ID] = true
		if e.ID != e.Fingerprint[:12] {
			t.Errorf("entry %s: ID is not the fingerprint prefix %s", e.ID, e.Fingerprint[:12])
		}
		if e.Checked <= 0 && !e.Disagree {
			t.Errorf("entry %s: non-reproducer with Checked=%d", e.ID, e.Checked)
		}
		if e.K <= 0 {
			t.Errorf("entry %s: K=%d", e.ID, e.K)
		}
		if _, err := e.Instance(); err != nil {
			t.Errorf("entry %s does not regenerate: %v", e.ID, err)
		}
	}
}

func TestCorpusGet(t *testing.T) {
	entries := Entries()
	first := entries[0]
	if got, err := Get(first.ID); err != nil || got.Fingerprint != first.Fingerprint {
		t.Fatalf("Get(%q) = %v, %v", first.ID, got.ID, err)
	}
	// The full ID is always an unambiguous prefix of itself; a shorter
	// prefix resolves iff unique.
	if got, err := Get(first.ID[:11]); err == nil && got.Fingerprint != first.Fingerprint {
		t.Fatalf("Get(prefix) resolved to a different entry %s", got.ID)
	}
	if _, err := Get("zzzz"); err == nil {
		t.Fatal("Get of an unknown ID succeeded")
	}
	if _, err := Get(""); err == nil {
		t.Fatal("Get of an empty ID succeeded")
	}
	if len(IDs()) != len(entries) {
		t.Fatalf("IDs() returned %d ids for %d entries", len(IDs()), len(entries))
	}
}

// TestCorpusInstanceRef round-trips corpus IDs through the unified
// resolver this package registers with internal/gen.
func TestCorpusInstanceRef(t *testing.T) {
	e := Entries()[0]
	rv, err := gen.Resolve(gen.InstanceRef{Corpus: e.ID})
	if err != nil {
		t.Fatalf("Resolve(corpus %s): %v", e.ID, err)
	}
	fp, err := rv.Instance.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != e.Fingerprint {
		t.Fatalf("resolved instance fingerprint %s, want %s", fp, e.Fingerprint)
	}
	if rv.Name != "corpus:"+e.ID {
		t.Fatalf("resolved name %q", rv.Name)
	}
	over, err := gen.Resolve(gen.InstanceRef{Corpus: e.ID, Gamma: 3})
	if err != nil {
		t.Fatal(err)
	}
	if over.Instance.Gamma != 3 {
		t.Fatalf("gamma override not applied: %d", over.Instance.Gamma)
	}
	if _, err := gen.Resolve(gen.InstanceRef{Corpus: "nonexistent"}); err == nil {
		t.Fatal("resolving an unknown corpus ID succeeded")
	}
}

// TestCorpusReplay replays every committed entry through the full
// differential harness via the InstanceRef path. Zero violations is the
// corpus contract: these instances are hard, not broken.
func TestCorpusReplay(t *testing.T) {
	sess := solve.NewSession()
	var total diff.Result
	for _, e := range Entries() {
		r := diff.CheckRef(gen.InstanceRef{Corpus: e.ID}, diff.Options{Session: sess})
		for _, v := range r.Violations {
			t.Errorf("corpus %s: %s", e.ID, v)
		}
		total = diff.Merge(total, r)
	}
	if total.Instances != len(Entries()) {
		t.Fatalf("replayed %d instances, want %d", total.Instances, len(Entries()))
	}
	if total.Exact == 0 {
		t.Fatal("no corpus entry anchored an exact optimum")
	}
	t.Logf("replayed %d entries: %d solver runs, %d oracle masks, %d skips",
		total.Instances, total.SolverRuns, total.OracleMasks, total.Skips)
}

// baselineRun is one canonical-class measurement for the hardness test.
type baselineRun struct {
	name    string
	k       int
	checked int
	elapsed time.Duration
}

// engineRun derives the set problem and runs the engine single-worker,
// returning (k, checked, best-of-3 wall time). ok=false when the instance
// is infeasible or outside the engine envelope.
func engineRun(t *testing.T, it *gen.Instance) (int, int, time.Duration, bool) {
	t.Helper()
	p, err := it.Derive()
	if err != nil {
		return 0, 0, 0, false
	}
	eng, _ := solve.Get("engine")
	if eng == nil || eng.Supports(p, secureview.Set) != nil {
		return 0, 0, 0, false
	}
	k := len(p.UsefulAttributes(secureview.Set))
	var checked int
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := solve.Solve(context.Background(), "engine", p, solve.Options{
			Variant: secureview.Set, Workers: 1,
		})
		if err != nil {
			t.Fatalf("engine on %s: %v", it.W.Name(), err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		checked = res.Counters.Checked
	}
	return k, checked, best, true
}

// TestCorpusHardness is the corpus's reason to exist: mined entries must
// be measurably harder for the engine than every canonical gen class.
//
//   - Deterministic claim: some entry's single-worker safety-test count
//     (Checked) is >= 2x the hardest canonical instance at comparable k
//     (baselines with k >= the entry's k), and the committed Checked value
//     replays exactly.
//   - Wall-clock claim: the hardest entry's engine runtime is >= 2x the
//     slowest canonical baseline (best-of-3 each; the Checked gap is
//     ~200x, so the margin absorbs timer noise).
func TestCorpusHardness(t *testing.T) {
	var base []baselineRun
	for _, cl := range gen.Classes() {
		for seed := int64(0); seed < 4; seed++ {
			it, err := gen.New(cl.Cfg, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", cl.Name, seed, err)
			}
			k, checked, elapsed, ok := engineRun(t, it)
			if !ok {
				continue
			}
			base = append(base, baselineRun{cl.Name, k, checked, elapsed})
		}
	}
	if len(base) == 0 {
		t.Fatal("no canonical baseline instance is engine-solvable")
	}
	maxBaseK, slowest := 0, time.Duration(0)
	for _, b := range base {
		if b.k > maxBaseK {
			maxBaseK = b.k
		}
		if b.elapsed > slowest {
			slowest = b.elapsed
		}
	}

	dominates := false
	var hardest *baselineRun // reuse the struct for the hardest replayed entry
	for _, e := range Entries() {
		if e.Disagree {
			continue
		}
		it, err := e.Instance()
		if err != nil {
			t.Fatal(err)
		}
		k, checked, elapsed, ok := engineRun(t, it)
		if !ok {
			t.Fatalf("corpus entry %s left the engine envelope", e.ID)
		}
		if k != e.K || checked != e.Checked {
			t.Errorf("entry %s replays as (k=%d, checked=%d), committed (k=%d, checked=%d)",
				e.ID, k, checked, e.K, e.Checked)
		}
		if hardest == nil || checked > hardest.checked {
			hardest = &baselineRun{e.ID, k, checked, elapsed}
		}
		if k > maxBaseK {
			continue // no comparable-k baseline to beat
		}
		baseMax := 0
		for _, b := range base {
			if b.k >= k && b.checked > baseMax {
				baseMax = b.checked
			}
		}
		if checked >= 2*baseMax {
			dominates = true
			t.Logf("entry %s: checked=%d at k=%d vs baseline max %d at k>=%d (%.1fx)",
				e.ID, checked, k, baseMax, k, float64(checked)/float64(baseMax))
		}
	}
	if !dominates {
		t.Error("no corpus entry reaches 2x the hardest canonical instance at comparable k")
	}
	if hardest == nil {
		t.Fatal("corpus holds no non-reproducer entries")
	}
	if hardest.elapsed < 2*slowest {
		t.Errorf("hardest entry %s ran in %v, want >= 2x the slowest baseline %v",
			hardest.name, hardest.elapsed, slowest)
	}
	t.Logf("hardest entry %s: checked=%d k=%d in %v (slowest baseline %v)",
		hardest.name, hardest.checked, hardest.k, hardest.elapsed, slowest)
}

// TestMineDeterministic is the miner smoke: a short fixed-seed run mines
// at least one candidate and is bit-for-bit repeatable.
func TestMineDeterministic(t *testing.T) {
	opts := MineOptions{Steps: 2, Seed: 3, PerEval: 30 * time.Second}
	first, err := Mine(context.Background(), opts)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if len(first) == 0 {
		t.Fatal("short mining run produced no candidates")
	}
	second, err := Mine(context.Background(), opts)
	if err != nil {
		t.Fatalf("re-mine: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("mining is not deterministic: %d vs %d entries", len(first), len(second))
	}
	for _, e := range first {
		if _, err := e.Instance(); err != nil {
			t.Errorf("mined candidate %s does not regenerate: %v", e.ID, err)
		}
	}
}
