// Package gen provides deterministic, seed-driven generators for Secure-View
// scenario instances: workflows over chain / tree / layered-DAG topologies
// with configurable fan-in/out, data sharing, domain sizes and public–private
// module mix; module functionalities (random truth tables, injective,
// constant-heavy); cost models; and ready-made secureview.Problem /
// worlds.HidingProblem instances.
//
// Every generator is a pure function of (Config, seed): the same seed
// reproduces a byte-identical instance (see CanonicalBytes) across runs and
// GOMAXPROCS settings, because generation is single-goroutine and never
// iterates Go maps while drawing random choices. The canonical topology
// classes used by the E22/E23 scenario experiments, the differential
// harness (internal/gen/diff), the fuzz seeds and the scenario benchmarks
// all come from Classes and ProblemClasses, so every consumer exercises the
// same slice of the instance space.
//
// Beyond (Config, seed) generation, InstanceRef names an instance from ANY
// source — generated class+seed, spec document, provenance CSV, or corpus
// ID — and Resolve turns any of them into a solvable instance. The server,
// the load generator, the bench sweeps and cmd/secureview all resolve
// through it, so every layer accepts every instance source uniformly.
package gen

import (
	"fmt"
	"math/rand"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
	"secureview/internal/worlds"
)

// Topology selects the workflow wiring shape.
type Topology int

const (
	// Chain wires module i to consume the outputs of module i-1 (module 0
	// consumes the initial inputs). Data sharing is 1.
	Chain Topology = iota
	// Tree attaches each module to one earlier producer chosen at random,
	// consuming up to FanIn of that producer's outputs; with Share=1 the
	// result is an out-forest.
	Tree
	// Layered builds Layers×Width modules; each module draws FanIn inputs
	// from the previous layer's outputs, sharing attributes up to Share
	// consumers. This is the averaged-experiment shape (layered DAGs of
	// random boolean modules), with fan-out, domain and sharing knobs.
	Layered
)

// String returns "chain", "tree" or "layered".
func (t Topology) String() string {
	switch t {
	case Tree:
		return "tree"
	case Layered:
		return "layered"
	default:
		return "chain"
	}
}

// FuncKind selects how module functionalities are drawn.
type FuncKind int

const (
	// RandomTable draws a uniformly random truth table (module.Random).
	RandomTable FuncKind = iota
	// Injective draws a random injection of the input domain into the
	// output domain (a permutation when the domains have equal size),
	// falling back to RandomTable when the output domain is too small.
	// Injective modules maximize what the visible view reveals, so they
	// are the hardest instances for a fixed Γ.
	Injective
	// ConstantHeavy maps every input to one of at most two output tuples,
	// biased 3:1 to the first. Small ranges collapse OUT sets, mimicking
	// aggregating/thresholding modules.
	ConstantHeavy
	// MixedFuncs draws one of the three kinds per module.
	MixedFuncs
)

// String names the kind.
func (k FuncKind) String() string {
	switch k {
	case Injective:
		return "injective"
	case ConstantHeavy:
		return "constant-heavy"
	case MixedFuncs:
		return "mixed"
	default:
		return "random-table"
	}
}

// CostModel selects how hiding costs are assigned.
type CostModel int

const (
	// UniformRandomCosts draws each attribute cost uniformly from
	// [1, MaxCost] in schema order.
	UniformRandomCosts CostModel = iota
	// UnitCosts assigns cost 1 everywhere (minimize the NUMBER of hidden
	// attributes).
	UnitCosts
	// InputHeavyCosts charges 4 for attributes consumed by some module and
	// 1 for the rest — the paper's natural utility model (hiding data that
	// feeds downstream modules hurts more), and the regime the E20/E21
	// benchmarks use.
	InputHeavyCosts
)

// String names the model.
func (c CostModel) String() string {
	switch c {
	case UnitCosts:
		return "unit"
	case InputHeavyCosts:
		return "input-heavy"
	default:
		return "uniform-random"
	}
}

// Config parameterizes workflow-instance generation. The zero value is
// usable: it means a 4-module boolean chain with fan-in/out 2, all-private
// random-table modules, uniform random costs in [1,5] and Γ=2.
type Config struct {
	Topology Topology
	// Modules is the module count for Chain and Tree (default 4).
	Modules int
	// Layers and Width shape the Layered topology (defaults 2×2).
	Layers, Width int
	// FanIn / FanOut are the per-module input/output attribute counts
	// (defaults 2 / 2). Chain modules consume min(FanIn, FanOut) of the
	// predecessor's outputs.
	FanIn, FanOut int
	// Domain is the size of every attribute domain (default 2).
	Domain int
	// Share caps how many modules may consume one attribute (default 1;
	// only Tree and Layered can exceed their structural sharing with it).
	Share int
	// PublicFrac marks each module public with this probability; at least
	// one module always stays private.
	PublicFrac float64
	// Funcs selects the module-functionality kind (default RandomTable).
	Funcs FuncKind
	// Costs selects the cost model (default UniformRandomCosts) and
	// MaxCost its scale (default 5).
	Costs   CostModel
	MaxCost float64
	// Gamma is the privacy requirement attached to the instance
	// (default 2).
	Gamma uint64
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Modules <= 0 {
		c.Modules = 4
	}
	if c.Layers <= 0 {
		c.Layers = 2
	}
	if c.Width <= 0 {
		c.Width = 2
	}
	if c.FanIn <= 0 {
		c.FanIn = 2
	}
	if c.FanOut <= 0 {
		c.FanOut = 2
	}
	if c.Domain < 2 {
		c.Domain = 2
	}
	if c.Share <= 0 {
		c.Share = 1
	}
	if c.MaxCost <= 1 {
		c.MaxCost = 5
	}
	if c.Gamma == 0 {
		c.Gamma = 2
	}
	return c
}

// validate rejects configurations whose modules could not be materialized
// as truth tables (the generators, the spec serializer and the canonical
// fingerprint all enumerate module domains).
func (c Config) validate() error {
	space := 1
	for i := 0; i < c.FanIn; i++ {
		space *= c.Domain
		if space > 1<<12 {
			return fmt.Errorf("gen: input domain %d^%d too large (max 4096)", c.Domain, c.FanIn)
		}
	}
	if c.PublicFrac < 0 || c.PublicFrac > 1 {
		return fmt.Errorf("gen: PublicFrac %g outside [0,1]", c.PublicFrac)
	}
	return nil
}

// Instance is one generated workflow scenario: the workflow, its hiding
// costs, privatization costs for its public modules, and the privacy
// requirement Γ.
type Instance struct {
	Cfg  Config
	Seed int64
	W    *workflow.Workflow
	// Costs assigns hiding penalties to every attribute of W.
	Costs privacy.Costs
	// PrivatizeCosts assigns c(m) to every public module of W.
	PrivatizeCosts map[string]float64
	Gamma          uint64
	// Recorded, when non-nil, restricts derivation to this provenance log
	// (partial-log semantics): requirement lists come from each module's
	// projection of the recorded executions instead of its full input
	// domain. Set by CSV-imported InstanceRefs; nil for generated sources.
	Recorded *relation.Relation
}

// New generates the instance for (cfg, seed). Identical arguments always
// produce byte-identical instances (CanonicalBytes).
func New(cfg Config, seed int64) (*Instance, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &builder{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	var mods []*module.Module
	switch cfg.Topology {
	case Tree:
		mods = b.tree()
	case Layered:
		mods = b.layered()
	default:
		mods = b.chain()
	}
	mods = b.applyVisibility(mods)
	w, err := workflow.New(fmt.Sprintf("%s-%d", cfg.Topology, seed), mods...)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	costs, priv := b.assignCosts(w)
	return &Instance{
		Cfg:            cfg,
		Seed:           seed,
		W:              w,
		Costs:          costs,
		PrivatizeCosts: priv,
		Gamma:          cfg.Gamma,
	}, nil
}

// MustNew is New panicking on error; for statically known configurations.
func MustNew(cfg Config, seed int64) *Instance {
	it, err := New(cfg, seed)
	if err != nil {
		panic(err)
	}
	return it
}

// builder carries the generation state. All random draws go through rng in
// a fixed order; no map is ever ranged over, keeping generation a pure
// function of the seed.
type builder struct {
	cfg Config
	rng *rand.Rand

	nextInitial int // fresh initial-input counter (x0, x1, ...)

	// produced lists every produced attribute in creation order together
	// with its remaining consumer capacity; byModule groups the indices of
	// each module's outputs for the Tree topology.
	produced []producedAttr
	byModule [][]int
}

type producedAttr struct {
	attr      relation.Attribute
	consumers int
}

func (b *builder) attr(name string) relation.Attribute {
	return relation.Attribute{Name: name, Domain: b.cfg.Domain}
}

// fresh mints n new initial-input attributes.
func (b *builder) fresh(n int) []relation.Attribute {
	out := make([]relation.Attribute, n)
	for i := range out {
		out[i] = b.attr(fmt.Sprintf("x%d", b.nextInitial))
		b.nextInitial++
	}
	return out
}

// outs mints the output attributes of module mi and registers them as
// available producers.
func (b *builder) outs(mi, n int) []relation.Attribute {
	out := make([]relation.Attribute, n)
	idx := make([]int, n)
	for i := range out {
		out[i] = b.attr(fmt.Sprintf("d%d_%d", mi, i))
		idx[i] = len(b.produced)
		b.produced = append(b.produced, producedAttr{attr: out[i]})
	}
	b.byModule = append(b.byModule, idx)
	return out
}

// chain wires module i to the outputs of module i-1.
func (b *builder) chain() []*module.Module {
	cfg := b.cfg
	mods := make([]*module.Module, 0, cfg.Modules)
	prev := b.fresh(cfg.FanIn)
	for i := 0; i < cfg.Modules; i++ {
		in := prev
		if len(in) > cfg.FanIn {
			in = in[:cfg.FanIn]
		}
		out := b.outs(i, cfg.FanOut)
		mods = append(mods, b.makeModule(fmt.Sprintf("m%d", i), in, out))
		prev = out
	}
	return mods
}

// tree attaches each module to one earlier producer with spare capacity.
func (b *builder) tree() []*module.Module {
	cfg := b.cfg
	mods := make([]*module.Module, 0, cfg.Modules)
	for i := 0; i < cfg.Modules; i++ {
		var in []relation.Attribute
		if i > 0 {
			in = b.pickFromParent()
		}
		if len(in) == 0 {
			in = b.fresh(cfg.FanIn)
		}
		out := b.outs(i, cfg.FanOut)
		mods = append(mods, b.makeModule(fmt.Sprintf("m%d", i), in, out))
	}
	return mods
}

// pickFromParent chooses a random earlier module that still has outputs
// with consumer capacity and consumes up to FanIn of them.
func (b *builder) pickFromParent() []relation.Attribute {
	var candidates []int // module indices with >=1 available output
	for mi, idxs := range b.byModule {
		for _, pi := range idxs {
			if b.produced[pi].consumers < b.cfg.Share {
				candidates = append(candidates, mi)
				break
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	parent := candidates[b.rng.Intn(len(candidates))]
	var in []relation.Attribute
	for _, pi := range b.byModule[parent] {
		if len(in) == b.cfg.FanIn {
			break
		}
		if b.produced[pi].consumers < b.cfg.Share {
			b.produced[pi].consumers++
			in = append(in, b.produced[pi].attr)
		}
	}
	return in
}

// layered builds Layers×Width modules, each drawing FanIn inputs from the
// previous layer (sharing up to Share consumers per attribute).
func (b *builder) layered() []*module.Module {
	cfg := b.cfg
	mods := make([]*module.Module, 0, cfg.Layers*cfg.Width)
	prev := make([]int, 0, cfg.Width) // indices into b.produced, or -1 rows for initial
	initial := b.fresh(cfg.Width)
	initialUse := make([]int, len(initial))
	mi := 0
	for l := 0; l < cfg.Layers; l++ {
		var next []int
		for wi := 0; wi < cfg.Width; wi++ {
			var in []relation.Attribute
			if l == 0 {
				// Draw from the shared initial inputs, capacity Share.
				var eligible []int
				for ai := range initial {
					if initialUse[ai] < cfg.Share {
						eligible = append(eligible, ai)
					}
				}
				for _, ai := range b.sample(eligible, cfg.FanIn) {
					initialUse[ai]++
					in = append(in, initial[ai])
				}
			} else {
				var eligible []int
				for _, pi := range prev {
					if b.produced[pi].consumers < cfg.Share {
						eligible = append(eligible, pi)
					}
				}
				for _, pi := range b.sample(eligible, cfg.FanIn) {
					b.produced[pi].consumers++
					in = append(in, b.produced[pi].attr)
				}
			}
			if len(in) == 0 {
				in = b.fresh(1)
			}
			out := b.outs(mi, cfg.FanOut)
			next = append(next, b.byModule[len(b.byModule)-1]...)
			mods = append(mods, b.makeModule(fmt.Sprintf("m%d_%d", l, wi), in, out))
			mi++
		}
		prev = next
	}
	return mods
}

// sample draws up to n distinct elements of xs in random order
// (deterministic partial Fisher–Yates over a copy).
func (b *builder) sample(xs []int, n int) []int {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]int(nil), xs...)
	if n > len(cp) {
		n = len(cp)
	}
	for i := 0; i < n; i++ {
		j := i + b.rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:n]
}

// applyVisibility marks each module public with probability PublicFrac,
// keeping at least one module private.
func (b *builder) applyVisibility(mods []*module.Module) []*module.Module {
	anyPrivate := false
	for i, m := range mods {
		if b.rng.Float64() < b.cfg.PublicFrac {
			mods[i] = m.AsPublic()
		} else {
			anyPrivate = true
		}
	}
	if !anyPrivate {
		mods[len(mods)-1] = mods[len(mods)-1].AsPrivate()
	}
	return mods
}

// assignCosts draws the hiding and privatization costs for the built
// workflow under the configured cost model, in deterministic schema /
// topological order.
func (b *builder) assignCosts(w *workflow.Workflow) (privacy.Costs, map[string]float64) {
	cfg := b.cfg
	costs := make(privacy.Costs, w.Schema().Len())
	for _, a := range w.Schema().Names() {
		switch cfg.Costs {
		case UnitCosts:
			costs[a] = 1
		case InputHeavyCosts:
			if len(w.Consumers(a)) > 0 {
				costs[a] = 4
			} else {
				costs[a] = 1
			}
		default:
			costs[a] = 1 + b.rng.Float64()*(cfg.MaxCost-1)
		}
	}
	priv := make(map[string]float64)
	for _, m := range w.PublicModules() {
		switch cfg.Costs {
		case UnitCosts:
			priv[m.Name()] = 1
		case InputHeavyCosts:
			priv[m.Name()] = 4
		default:
			priv[m.Name()] = 1 + b.rng.Float64()*(cfg.MaxCost-1)
		}
	}
	return priv2costs(costs), priv
}

// priv2costs exists to keep the return type explicit.
func priv2costs(c privacy.Costs) privacy.Costs { return c }

// Derive assembles the set-constraint Secure-View instance of the workflow
// (Theorems 4/8) under the instance's costs and Γ.
func (it *Instance) Derive() (*secureview.Problem, error) {
	return secureview.Derive(it.W, secureview.DeriveOptions{
		Gamma:          it.Gamma,
		Costs:          it.Costs,
		PrivatizeCosts: it.PrivatizeCosts,
		Recorded:       it.Recorded,
	})
}

// DeriveCard assembles the cardinality-constraint instance.
func (it *Instance) DeriveCard() (*secureview.Problem, error) {
	return secureview.DeriveCardProblem(it.W, it.Gamma, it.Costs, it.PrivatizeCosts)
}

// HidingProblem grounds the instance in possible-world semantics: the
// candidates are every non-initial attribute, and each safety test is a full
// worlds enumeration. It errors when the initial-input domain is too large
// to materialize the provenance relation.
func (it *Instance) HidingProblem(budget uint64) (worlds.HidingProblem, error) {
	r, err := it.W.Relation(1 << 12)
	if err != nil {
		return worlds.HidingProblem{}, err
	}
	initial := relation.NewNameSet(it.W.InitialInputNames()...)
	var cands []string
	for _, a := range it.W.Schema().Names() {
		if !initial.Has(a) {
			cands = append(cands, a)
		}
	}
	return worlds.HidingProblem{
		W:          it.W,
		R:          r,
		Candidates: cands,
		Costs:      it.Costs,
		Gamma:      it.Gamma,
		Budget:     budget,
	}, nil
}

// Class is a named canonical configuration — one topology class of the
// scenario suite.
type Class struct {
	Name string
	Cfg  Config
}

// Classes returns the canonical workflow topology classes. E22/E23, the
// differential property tests, the e2e scenario test, the fuzz seeds and
// the -benchjson scenario rows all iterate this list, so adding a class
// here grows every harness at once.
func Classes() []Class {
	return []Class{
		{"chain", Config{Topology: Chain, Modules: 4, FanIn: 2, FanOut: 2}},
		{"chain-injective", Config{Topology: Chain, Modules: 3, FanIn: 2, FanOut: 2, Funcs: Injective}},
		{"chain-domain3", Config{Topology: Chain, Modules: 3, FanIn: 1, FanOut: 1, Domain: 3, Gamma: 3}},
		{"tree", Config{Topology: Tree, Modules: 4, FanIn: 2, FanOut: 2}},
		{"tree-constant", Config{Topology: Tree, Modules: 4, FanIn: 2, FanOut: 1, Funcs: ConstantHeavy, Costs: UnitCosts}},
		{"layered", Config{Topology: Layered, Layers: 2, Width: 2, FanIn: 2, FanOut: 1, Share: 2, Funcs: MixedFuncs}},
		{"layered-public", Config{Topology: Layered, Layers: 2, Width: 2, FanIn: 2, FanOut: 1, Share: 2, PublicFrac: 0.34, Costs: InputHeavyCosts}},
	}
}
