package gen

import (
	"fmt"
	"math/rand"

	"secureview/internal/privacy"
	"secureview/internal/secureview"
)

// ProblemConfig parameterizes abstract Secure-View instance generation —
// requirement-list instances with both constraint variants populated, no
// concrete module functionality behind them. These are the inputs the
// paper's optimization algorithms (section 4–5) consume directly, so they
// let the differential harness sweep solver space far faster than deriving
// from executable workflows.
type ProblemConfig struct {
	// Modules is the module count (default 5).
	Modules int
	// MaxInputs bounds each module's input arity; the arity is drawn from
	// [1, MaxInputs] (default 2).
	MaxInputs int
	// Outputs is each module's output count (default 1).
	Outputs int
	// Share caps how many modules consume one attribute (default 2).
	Share int
	// PublicFrac marks modules public with this probability; at least one
	// module always stays private.
	PublicFrac float64
	// MaxCost scales the uniform random costs in [1, MaxCost] (default 5).
	MaxCost float64
	// Singletons switches the requirement lists to the legacy
	// workload.RandomProblem shape: each private module offers "hide my
	// output(s)" or "hide any ONE input" (set variant: one singleton option
	// per input; cardinality variant: α=1 ∨ β=1). The default shape instead
	// demands ALL inputs or ALL outputs, which is strictly harder per
	// module; singleton instances have many more near-ties, which is what
	// E19's greedy-vs-LP scaling sweep measures.
	Singletons bool
}

func (c ProblemConfig) withDefaults() ProblemConfig {
	if c.Modules <= 0 {
		c.Modules = 5
	}
	if c.MaxInputs <= 0 {
		c.MaxInputs = 2
	}
	if c.Outputs <= 0 {
		c.Outputs = 1
	}
	if c.Share <= 0 {
		c.Share = 2
	}
	if c.MaxCost <= 1 {
		c.MaxCost = 5
	}
	return c
}

// Problem generates an abstract Secure-View instance for (cfg, seed): a
// chain with cross-links where module i consumes 1..MaxInputs attributes
// produced earlier (bounded by Share consumers each) and offers the
// requirement options "hide all my inputs", "hide all my outputs" and —
// with a coin flip — the mixed pair "hide one input and one output".
// Both the set and the cardinality lists encode the same options, so the
// two variants of every solver see the same instance. Identical arguments
// produce byte-identical instances (ProblemCanonicalBytes).
func Problem(cfg ProblemConfig, seed int64) *secureview.Problem {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	p := &secureview.Problem{Costs: privacy.Costs{}}

	type produced struct {
		name      string
		consumers int
	}
	pool := []produced{{name: "g0"}}
	p.Costs["g0"] = 1 + rng.Float64()*(cfg.MaxCost-1)
	nextSrc := 1

	anyPrivate := false
	for i := 0; i < cfg.Modules; i++ {
		k := 1 + rng.Intn(cfg.MaxInputs)
		var in []string
		// Draw k distinct producers with spare capacity, in random order.
		var eligible []int
		for pi := range pool {
			if pool[pi].consumers < cfg.Share {
				eligible = append(eligible, pi)
			}
		}
		for t := 0; t < len(eligible) && len(in) < k; t++ {
			j := t + rng.Intn(len(eligible)-t)
			eligible[t], eligible[j] = eligible[j], eligible[t]
			pool[eligible[t]].consumers++
			in = append(in, pool[eligible[t]].name)
		}
		if len(in) == 0 {
			src := fmt.Sprintf("g%d", nextSrc)
			nextSrc++
			p.Costs[src] = 1 + rng.Float64()*(cfg.MaxCost-1)
			pool = append(pool, produced{name: src, consumers: 1})
			in = append(in, src)
		}
		out := make([]string, cfg.Outputs)
		for j := range out {
			out[j] = fmt.Sprintf("d%d_%d", i, j)
			p.Costs[out[j]] = 1 + rng.Float64()*(cfg.MaxCost-1)
			pool = append(pool, produced{name: out[j]})
		}

		spec := secureview.ModuleSpec{
			Name:    fmt.Sprintf("m%d", i),
			Inputs:  in,
			Outputs: out,
		}
		public := rng.Float64() < cfg.PublicFrac
		if i == cfg.Modules-1 && !anyPrivate {
			public = false // at least one module must carry a requirement
		}
		if public {
			spec.Public = true
			spec.PrivatizeCost = 1 + rng.Float64()*(cfg.MaxCost-1)
		} else if cfg.Singletons {
			anyPrivate = true
			spec.SetList = []secureview.SetReq{{Out: append([]string(nil), out...)}}
			for _, a := range in {
				spec.SetList = append(spec.SetList, secureview.SetReq{In: []string{a}})
			}
			spec.CardList = []secureview.CardReq{{Alpha: 1}, {Beta: 1}}
		} else {
			anyPrivate = true
			spec.SetList = []secureview.SetReq{
				{In: append([]string(nil), in...)},
				{Out: append([]string(nil), out...)},
			}
			spec.CardList = []secureview.CardReq{
				{Alpha: len(in)},
				{Beta: len(out)},
			}
			if rng.Intn(2) == 1 {
				spec.SetList = append(spec.SetList,
					secureview.SetReq{In: in[:1], Out: out[:1]})
				spec.CardList = append(spec.CardList,
					secureview.CardReq{Alpha: 1, Beta: 1})
			}
		}
		p.Modules = append(p.Modules, spec)
	}
	return p
}

// ProblemClass is a named canonical abstract-instance configuration.
type ProblemClass struct {
	Name string
	Cfg  ProblemConfig
}

// ProblemClasses returns the canonical abstract-instance classes swept by
// the differential harness and the E22 scenario suite.
func ProblemClasses() []ProblemClass {
	return []ProblemClass{
		{"sparse", ProblemConfig{Modules: 5, MaxInputs: 1, Outputs: 1, Share: 1}},
		{"shared", ProblemConfig{Modules: 5, MaxInputs: 2, Outputs: 1, Share: 3}},
		{"wide", ProblemConfig{Modules: 4, MaxInputs: 3, Outputs: 2, Share: 2}},
		{"public-mix", ProblemConfig{Modules: 6, MaxInputs: 2, Outputs: 1, Share: 2, PublicFrac: 0.3}},
		{"singleton", ProblemConfig{Modules: 6, MaxInputs: 2, Outputs: 1, Share: 2, Singletons: true}},
	}
}

// MegaProblemClasses returns the mega-scale abstract-instance classes: all
// private, hundreds of modules, useful-attribute universes of k ≥ 40 —
// far beyond the 2^k exact tier, which exits with typed budget errors
// there. They exist to exercise the certified approximation tier and the
// portfolio meta-solver, and are deliberately kept out of ProblemClasses
// so the exhaustive sweeps (differential harness defaults, E22, fuzzing)
// stay exact-solver sized.
func MegaProblemClasses() []ProblemClass {
	return []ProblemClass{
		{"mega-sparse", ProblemConfig{Modules: 120, MaxInputs: 1, Outputs: 1, Share: 1}},
		{"mega-shared", ProblemConfig{Modules: 150, MaxInputs: 2, Outputs: 1, Share: 4}},
		{"mega-wide", ProblemConfig{Modules: 100, MaxInputs: 3, Outputs: 2, Share: 3}},
	}
}
