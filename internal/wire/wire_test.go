package wire

import (
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf []byte
	buf = AppendU64(buf, 0xDEADBEEFCAFE)
	buf = AppendU32(buf, 7)
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)
	buf = AppendF64(buf, 3.25)
	buf = AppendString(buf, "hello")
	buf = AppendString(buf, "")
	buf = AppendBytes(buf, []byte{1, 2, 3})

	r := NewReader(buf)
	if got := r.U64(); got != 0xDEADBEEFCAFE {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.U32(); got != 7 {
		t.Fatalf("U32 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := r.F64(); got != 3.25 {
		t.Fatalf("F64 = %g", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if got := r.Bytes(); string(got) != "\x01\x02\x03" {
		t.Fatalf("Bytes = %v", got)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderLatchesOnUnderflow(t *testing.T) {
	r := NewReader(AppendU32(nil, 1))
	if r.U64(); r.Err() == nil {
		t.Fatal("underflowing U64 did not latch an error")
	}
	// Every subsequent read is a zero-value no-op, never a panic.
	if r.U64() != 0 || r.String() != "" || r.Bool() || r.Count(1) != 0 {
		t.Fatal("reads after error were not zero-valued")
	}
}

func TestStringLengthGuard(t *testing.T) {
	// A corrupt length prefix far beyond the buffer must fail, not allocate.
	buf := AppendU64(nil, 1<<60)
	r := NewReader(buf)
	if r.String() != "" || r.Err() == nil {
		t.Fatal("oversized string length not rejected")
	}
}

func TestCountGuard(t *testing.T) {
	buf := AppendU64(nil, 1000) // claims 1000 elements, no bytes follow
	r := NewReader(buf)
	if r.Count(8) != 0 || r.Err() == nil {
		t.Fatal("oversized count not rejected")
	}
	ok := AppendU64(nil, 2)
	ok = AppendU64(ok, 1)
	ok = AppendU64(ok, 2)
	r = NewReader(ok)
	if n := r.Count(8); n != 2 || r.Err() != nil {
		t.Fatalf("valid count rejected: n=%d err=%v", n, r.Err())
	}
}

func TestSealOpen(t *testing.T) {
	payload := []byte("the payload")
	frame := Seal(3, payload)
	got, err := Open(frame, 3)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("Open = %q, %v", got, err)
	}

	if _, err := Open(frame, 4); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
	if _, err := Open(frame[:len(frame)-1], 3); err == nil {
		t.Fatal("truncated frame not rejected")
	}
	if _, err := Open(append(append([]byte(nil), frame...), 'x'), 3); err == nil {
		t.Fatal("trailing garbage not rejected")
	}
	for i := 0; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := Open(bad, 3); err == nil {
			t.Fatalf("flipped byte %d not rejected", i)
		}
	}
	if _, err := Open(nil, 3); err == nil {
		t.Fatal("empty input not rejected")
	}
}
