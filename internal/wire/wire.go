// Package wire holds the binary codec primitives behind the session
// snapshot format: little-endian fixed-width appenders, an error-latching
// Reader whose length reads can never allocate past the buffer they decode
// from, and a checksummed envelope (Seal/Open) that makes corrupt,
// truncated or version-bumped input a detectable condition instead of a
// panic or a garbage value.
//
// The format is deliberately dumb: fixed-width integers, length-prefixed
// byte strings, count-prefixed sequences. Every consumer (internal/oracle,
// internal/search, internal/solve) re-derives whatever state it can from
// the primary tables it decodes, so the wire shape stays small and a
// malformed payload can at worst fail validation — it never becomes live
// inconsistent state.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// AppendU64 appends v as 8 little-endian bytes.
func AppendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// AppendU32 appends v as 4 little-endian bytes.
func AppendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendF64 appends the IEEE-754 bits of v.
func AppendF64(buf []byte, v float64) []byte {
	return AppendU64(buf, math.Float64bits(v))
}

// AppendString appends a u64 length prefix followed by the raw bytes.
func AppendString(buf []byte, s string) []byte {
	buf = AppendU64(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a u64 length prefix followed by the raw bytes.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = AppendU64(buf, uint64(len(b)))
	return append(buf, b...)
}

// Reader decodes a payload produced with the appenders above. The first
// failed read latches an error; every later read returns the zero value, so
// decoders can run straight-line and check Err once at the end (validation
// of the decoded VALUES remains the caller's job).
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps a payload for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the latched decode error, nil while every read has succeeded.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// fail latches the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail("need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads 8 little-endian bytes.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads 4 little-endian bytes.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Bool reads one byte, failing on anything but 0 or 1.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool byte %d", b[0])
		return false
	}
}

// F64 reads the IEEE-754 bits of a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string. The length is validated against
// the remaining payload before any allocation, so a corrupt prefix cannot
// drive an enormous make.
func (r *Reader) String() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail("string length %d exceeds remaining %d", n, r.Remaining())
		return ""
	}
	return string(r.take(int(n)))
}

// Bytes reads a length-prefixed byte string (a fresh copy).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail("bytes length %d exceeds remaining %d", n, r.Remaining())
		return nil
	}
	return append([]byte(nil), r.take(int(n))...)
}

// Count reads a u64 sequence count and validates it against the remaining
// payload assuming each element occupies at least elemBytes bytes, so a
// corrupt count can never drive an allocation past the buffer being
// decoded. elemBytes must be ≥ 1.
func (r *Reader) Count(elemBytes int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > uint64(r.Remaining()/elemBytes) {
		r.fail("count %d exceeds remaining %d bytes at %d bytes each",
			n, r.Remaining(), elemBytes)
		return 0
	}
	return int(n)
}

// Envelope framing: magic, version, payload length, CRC-32C of the payload,
// then the payload. Open rejects anything that does not check out — wrong
// magic, unknown version, truncation, trailing garbage, checksum mismatch —
// with a descriptive error and touches nothing else, which is what lets
// snapshot restore degrade to an empty session instead of error-looping.
const magic = "SVSN"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal frames a payload: magic + version + length + CRC-32C + payload.
func Seal(version uint32, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+16+len(payload))
	out = append(out, magic...)
	out = AppendU32(out, version)
	out = AppendU64(out, uint64(len(payload)))
	out = AppendU32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// Open validates a sealed frame and returns the payload. The version must
// match exactly: snapshot formats are rebuildable caches, so cross-version
// migration is deliberately not attempted.
func Open(data []byte, version uint32) ([]byte, error) {
	head := len(magic) + 16
	if len(data) < head {
		return nil, fmt.Errorf("wire: frame truncated at %d bytes", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q", data[:len(magic)])
	}
	r := NewReader(data[len(magic):])
	gotVersion := r.U32()
	length := r.U64()
	sum := r.U32()
	if gotVersion != version {
		return nil, fmt.Errorf("wire: version %d, want %d", gotVersion, version)
	}
	payload := data[head:]
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("wire: payload length %d, header says %d", len(payload), length)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("wire: payload checksum mismatch")
	}
	return payload, nil
}
