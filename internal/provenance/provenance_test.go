package provenance

import (
	"encoding/json"
	"strings"
	"testing"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

func TestRecordAndSize(t *testing.T) {
	s := NewStore(workflow.Fig1())
	if err := s.Record(relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1 {
		t.Fatalf("size = %d after duplicate record, want 1", s.Size())
	}
	if err := s.Record(relation.Tuple{9, 9}); err == nil {
		t.Error("invalid input accepted")
	}
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("size = %d after RecordAll, want 4", s.Size())
	}
}

func TestSecureViewFig1(t *testing.T) {
	s := NewStore(workflow.Fig1())
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	costs := privacy.Uniform(s.Workflow().Schema().Names()...)
	for _, solver := range []Solver{SolverExact, SolverGreedy, SolverLP} {
		t.Run(solver.String(), func(t *testing.T) {
			v, err := s.SecureView(2, costs, nil, solver)
			if err != nil {
				t.Fatal(err)
			}
			if err := v.VerifyStandalone(); err != nil {
				t.Fatal(err)
			}
			if v.Gamma != 2 || v.Cost <= 0 {
				t.Errorf("gamma=%d cost=%v", v.Gamma, v.Cost)
			}
			// The published relation has only visible columns.
			for _, n := range v.Relation().Schema().Names() {
				if v.Hidden.Has(n) {
					t.Errorf("hidden attribute %q in published view", n)
				}
			}
		})
	}
}

func TestSecureViewExactNoWorseThanOthers(t *testing.T) {
	s := NewStore(workflow.Fig1())
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	costs := privacy.Uniform(s.Workflow().Schema().Names()...)
	exact, err := s.SecureView(2, costs, nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := s.SecureView(2, costs, nil, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := s.SecureView(2, costs, nil, SolverLP)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cost > greedy.Cost || exact.Cost > lp.Cost {
		t.Errorf("exact %v worse than greedy %v or lp %v", exact.Cost, greedy.Cost, lp.Cost)
	}
}

func TestQueryRespectsVisibility(t *testing.T) {
	s := NewStore(workflow.Fig1())
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	costs := privacy.Uniform(s.Workflow().Schema().Names()...)
	v, err := s.SecureView(2, costs, nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.HiddenSorted()) == 0 {
		t.Fatal("no hidden attributes")
	}
	hidden := v.HiddenSorted()[0]
	if _, err := v.Query([]string{hidden}); err == nil {
		t.Error("query over hidden attribute succeeded")
	}
	visible := v.Visible.Sorted()[0]
	r, err := v.Query([]string{visible})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema().Len() != 1 {
		t.Error("query projection wrong")
	}
}

func TestSecureViewWithPublicModulePrivatizes(t *testing.T) {
	// Private identity feeding a public complement; hiding the shared
	// attribute must privatize (rename) the public module.
	mPriv := module.Identity("m", []string{"i0"}, []string{"u"})
	mPub := module.Complement("mpp", []string{"u"}, []string{"v"}).AsPublic()
	w := workflow.MustNew("ex8", mPriv, mPub)
	s := NewStore(w)
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	costs := privacy.Costs{"i0": 5, "u": 1, "v": 5}
	v, err := s.SecureView(2, costs, map[string]float64{"mpp": 1}, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyStandalone(); err != nil {
		t.Fatal(err)
	}
	if !v.Hidden.Has("u") {
		t.Fatalf("expected u hidden, got %v", v.Hidden)
	}
	if !v.Privatized.Has("mpp") {
		t.Fatal("public module adjacent to hidden attribute not privatized")
	}
	if name := v.ModuleName("mpp"); !strings.HasPrefix(name, "hidden-module-") {
		t.Errorf("privatized module exposed as %q", name)
	}
	if v.ModuleName("m") != "m" {
		t.Error("private module renamed unexpectedly")
	}
}

func TestExportJSON(t *testing.T) {
	s := NewStore(workflow.Fig1())
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	costs := privacy.Uniform(s.Workflow().Schema().Names()...)
	v, err := s.SecureView(2, costs, nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := v.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if doc["workflow"] != "fig1" {
		t.Errorf("workflow name = %v", doc["workflow"])
	}
	// No hidden attribute may appear in the serialized executions.
	for _, h := range v.HiddenSorted() {
		if strings.Contains(string(raw), `"`+h+`"`) {
			t.Errorf("hidden attribute %q leaked into export", h)
		}
	}
}
