// Package provenance is the user-facing layer of the library: it records
// workflow executions into a provenance relation, and publishes privacy-
// preserving views of it.
//
// This is the deployment surface the paper motivates (section 1): a
// workflow owner records runs, decides a privacy requirement Γ and
// attribute costs, and the store computes a safe view — a projection of the
// provenance relation that keeps every private module Γ-private, with
// public modules privatized (renamed) when required by Theorem 8. Users
// query the view; hidden attributes and the identities of privatized
// modules are never revealed.
package provenance

import (
	"encoding/json"
	"fmt"
	"sort"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
)

// Store accumulates executions of one workflow.
type Store struct {
	w   *workflow.Workflow
	rel *relation.Relation
}

// NewStore returns an empty store for the workflow.
func NewStore(w *workflow.Workflow) *Store {
	return &Store{w: w, rel: relation.New(w.Schema())}
}

// Workflow returns the underlying workflow.
func (s *Store) Workflow() *workflow.Workflow { return s.w }

// Record executes the workflow on one initial-input assignment and stores
// the provenance tuple. Duplicate executions are merged (set semantics).
func (s *Store) Record(initial relation.Tuple) error {
	row, err := s.w.Execute(initial)
	if err != nil {
		return err
	}
	return s.rel.Insert(row)
}

// RecordAll executes the workflow over its entire initial-input domain
// (bounded by maxRows), making the stored relation total.
func (s *Store) RecordAll(maxRows uint64) error {
	r, err := s.w.Relation(maxRows)
	if err != nil {
		return err
	}
	s.rel = r
	return nil
}

// Size returns the number of recorded executions.
func (s *Store) Size() int { return s.rel.Len() }

// Relation returns the full provenance relation (owner-side access).
func (s *Store) Relation() *relation.Relation { return s.rel }

// Solver selects the optimization algorithm for SecureView.
type Solver int

const (
	// SolverExact uses branch and bound (optimal; exponential worst case).
	SolverExact Solver = iota
	// SolverGreedy uses the per-module greedy ((γ+1)-approximation under
	// bounded data sharing, Theorem 7).
	SolverGreedy
	// SolverLP uses LP rounding (the ℓmax-approximation of Theorem 6 /
	// appendix C.4).
	SolverLP
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverExact:
		return "exact"
	case SolverGreedy:
		return "greedy"
	case SolverLP:
		return "lp"
	}
	return "unknown"
}

// View is a published privacy-preserving projection of the provenance
// relation.
type View struct {
	// Visible lists the visible attributes V.
	Visible relation.NameSet
	// Hidden lists the hidden attributes V̄.
	Hidden relation.NameSet
	// Privatized lists public modules whose identity is hidden.
	Privatized relation.NameSet
	// Gamma is the privacy requirement the view guarantees.
	Gamma uint64
	// Cost is the total cost c(V̄) + c(P̄) paid for the view.
	Cost float64

	rel   *relation.Relation // already projected onto Visible
	w     *workflow.Workflow
	alias map[string]string // privatized module -> anonymous name
}

// SecureView computes a Γ-private view: it derives per-module requirement
// lists from standalone analysis (Theorem 4 / Theorem 8 assembly), solves
// the Secure-View optimization with the chosen solver, verifies the
// solution, and returns the projected view.
func (s *Store) SecureView(gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64, solver Solver) (*View, error) {
	prob, err := secureview.DeriveSet(s.w, gamma, costs, privatizeCosts)
	if err != nil {
		return nil, err
	}
	return s.solveAndBuild(prob, gamma, solver)
}

// deriveRecorded builds the Secure-View instance from the projections of
// the recorded executions (see SecureViewRecorded).
func deriveRecorded(s *Store, gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64) (*secureview.Problem, error) {
	return secureview.Derive(s.w, secureview.DeriveOptions{
		Gamma:          gamma,
		Costs:          costs,
		PrivatizeCosts: privatizeCosts,
		Recorded:       s.rel,
	})
}

// finishView solves the instance with the exact solver and packages the
// view.
func (s *Store) finishView(prob *secureview.Problem, gamma uint64) (*View, error) {
	return s.solveAndBuild(prob, gamma, SolverExact)
}

func (s *Store) solveAndBuild(prob *secureview.Problem, gamma uint64, solver Solver) (*View, error) {
	var sol secureview.Solution
	var err error
	switch solver {
	case SolverExact:
		sol, err = secureview.ExactSet(prob, 1<<22)
	case SolverGreedy:
		sol = secureview.Greedy(prob, secureview.Set)
	case SolverLP:
		sol, _, err = secureview.SetLPRound(prob)
	default:
		err = fmt.Errorf("provenance: unknown solver %v", solver)
	}
	if err != nil {
		return nil, err
	}
	if !prob.Feasible(sol, secureview.Set) {
		return nil, fmt.Errorf("provenance: solver %v produced infeasible solution", solver)
	}
	all := relation.NewNameSet(s.w.Schema().Names()...)
	visible := all.Minus(sol.Hidden)
	projected, err := s.rel.Project(visible.FilterSorted(s.w.Schema().Names()))
	if err != nil {
		return nil, err
	}
	alias := make(map[string]string)
	i := 1
	for _, name := range sol.Privatized.Sorted() {
		alias[name] = fmt.Sprintf("hidden-module-%d", i)
		i++
	}
	return &View{
		Visible:    visible,
		Hidden:     sol.Hidden,
		Privatized: sol.Privatized,
		Gamma:      gamma,
		Cost:       prob.Cost(sol),
		rel:        projected,
		w:          s.w,
		alias:      alias,
	}, nil
}

// Relation returns the projected relation R_V the view publishes.
func (v *View) Relation() *relation.Relation { return v.rel }

// Query projects the view further onto the requested attributes. Requests
// touching hidden attributes fail — the user cannot observe them.
func (v *View) Query(attrs []string) (*relation.Relation, error) {
	for _, a := range attrs {
		if !v.Visible.Has(a) {
			return nil, fmt.Errorf("provenance: attribute %q is not visible in this view", a)
		}
	}
	return v.rel.Project(attrs)
}

// ModuleName returns the name the view exposes for a module: privatized
// public modules are renamed to anonymous identifiers (the privatization
// device of section 5.1); everything else keeps its name.
func (v *View) ModuleName(name string) string {
	if alias, ok := v.alias[name]; ok {
		return alias
	}
	return name
}

// exportModule is the JSON shape of one module in an exported view.
type exportModule struct {
	Name       string   `json:"name"`
	Inputs     []string `json:"inputs"`
	Outputs    []string `json:"outputs"`
	Visibility string   `json:"visibility"`
}

// exportDoc is the JSON document shape of an exported view, loosely
// following the Open Provenance Model's process/artifact split: modules are
// processes, attributes are artifacts, executions are accounts.
type exportDoc struct {
	Workflow   string           `json:"workflow"`
	Gamma      uint64           `json:"gamma"`
	Modules    []exportModule   `json:"modules"`
	Attributes []string         `json:"attributes"`
	Executions []map[string]int `json:"executions"`
}

// ExportJSON serializes the view: visible attributes only, privatized
// modules renamed, one record per execution.
func (v *View) ExportJSON() ([]byte, error) {
	doc := exportDoc{
		Workflow:   v.w.Name(),
		Gamma:      v.Gamma,
		Attributes: v.Visible.FilterSorted(v.w.Schema().Names()),
	}
	for _, m := range v.w.Modules() {
		vis := m.Visibility().String()
		if v.Privatized.Has(m.Name()) {
			vis = "privatized"
		}
		doc.Modules = append(doc.Modules, exportModule{
			Name:       v.ModuleName(m.Name()),
			Inputs:     v.Visible.FilterSorted(m.InputNames()),
			Outputs:    v.Visible.FilterSorted(m.OutputNames()),
			Visibility: vis,
		})
	}
	names := v.rel.Schema().Names()
	for _, row := range v.rel.SortedRows() {
		rec := make(map[string]int, len(names))
		for i, n := range names {
			rec[n] = row[i]
		}
		doc.Executions = append(doc.Executions, rec)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// VerifyStandalone re-checks, for every private module, that the view's
// visible attributes are standalone-safe for Γ (the building block whose
// assembly Theorems 4 and 8 guarantee). It is an owner-side audit tool.
func (v *View) VerifyStandalone() error {
	for _, m := range v.w.Modules() {
		if m.Visibility() == module.Public && !v.Privatized.Has(m.Name()) {
			// Theorem 8 side condition: all attributes visible.
			for _, a := range append(m.InputNames(), m.OutputNames()...) {
				if !v.Visible.Has(a) {
					return fmt.Errorf("provenance: visible public module %s has hidden attribute %q", m.Name(), a)
				}
			}
			continue
		}
		if m.Visibility() == module.Public {
			continue // privatized; treated as private going forward
		}
		mv := privacy.NewModuleView(m)
		safe, err := mv.IsSafe(v.Visible, v.Gamma)
		if err != nil {
			return err
		}
		if !safe {
			return fmt.Errorf("provenance: module %s not %d-standalone-private", m.Name(), v.Gamma)
		}
	}
	return nil
}

// HiddenSorted returns the hidden attributes in sorted order (stable
// reporting helper).
func (v *View) HiddenSorted() []string {
	out := v.Hidden.Sorted()
	sort.Strings(out)
	return out
}
