package provenance

import (
	"fmt"
	"io"

	"secureview/internal/relation"
)

// ImportCSV loads previously exported executions into the store. Rows must
// be full provenance tuples over the workflow schema; each row is
// re-validated against the workflow's modules (an imported log must be
// consistent with the functionality, or it is not provenance of this
// workflow).
func (s *Store) ImportCSV(r io.Reader) error {
	rel, err := relation.ReadCSV(s.w.Schema(), r)
	if err != nil {
		return err
	}
	initialCols, err := s.w.Schema().Columns(s.w.InitialInputNames())
	if err != nil {
		return err
	}
	for _, row := range rel.Rows() {
		initial := make(relation.Tuple, len(initialCols))
		for i, c := range initialCols {
			initial[i] = row[c]
		}
		replayed, err := s.w.Execute(initial)
		if err != nil {
			return fmt.Errorf("provenance: replaying imported row: %w", err)
		}
		if !replayed.Equal(row) {
			return fmt.Errorf("provenance: imported row %v inconsistent with workflow functionality", row)
		}
		if err := s.rel.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// ExportCSV writes the recorded executions (owner-side, all attributes).
func (s *Store) ExportCSV(w io.Writer) error {
	return s.rel.WriteCSV(w)
}

// ExportCSV writes the published view's rows (visible attributes only).
func (v *View) ExportCSV(w io.Writer) error {
	return v.rel.WriteCSV(w)
}
