package provenance

import (
	"fmt"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/query"
	"secureview/internal/relation"
)

// SecureViewForWorkload computes a Γ-private view whose cost function is
// derived from an expected query workload: hiding an attribute costs the
// total weight of the queries it makes unanswerable (section 1's "utility
// lost to the user"). It returns the view together with the retained
// utility — the fraction of workload weight still answerable.
func (s *Store) SecureViewForWorkload(gamma uint64, wl query.Workload, privatizeCosts map[string]float64, solver Solver) (*View, float64, error) {
	if err := wl.Validate(s.w.Schema()); err != nil {
		return nil, 0, err
	}
	const epsilon = 1e-3
	costs := wl.Costs(s.w.Schema(), epsilon)
	view, err := s.SecureView(gamma, costs, privatizeCosts, solver)
	if err != nil {
		return nil, 0, err
	}
	answerable, total := wl.AnswerableWeight(view.Visible)
	utility := 1.0
	if total > 0 {
		utility = answerable / total
	}
	return view, utility, nil
}

// Answer evaluates a workload query against the view, refusing queries that
// touch hidden attributes.
func (v *View) Answer(q query.Query) (*relation.Relation, error) {
	if !q.Answerable(v.Visible) {
		return nil, fmt.Errorf("provenance: query %s touches hidden attributes", q.Name)
	}
	return q.Eval(v.rel)
}

// AuditRecorded re-checks the view's per-module standalone guarantees
// against the store's *current* recorded executions (the paper's R is the
// set of executions that have been run, so the guarantee must be re-audited
// as the log grows: new rows can introduce new input groups with too little
// output ambiguity). It returns nil when every private module — and every
// privatized public module — still meets Γ over the recorded projections.
func AuditRecorded(s *Store, v *View) error {
	for _, m := range s.w.Modules() {
		private := m.Visibility() == module.Private || v.Privatized.Has(m.Name())
		if !private {
			continue
		}
		proj, err := s.rel.Project(m.AttrNames())
		if err != nil {
			return err
		}
		mv := privacy.ModuleView{Rel: proj, Inputs: m.InputNames(), Outputs: m.OutputNames()}
		safe, err := mv.IsSafe(v.Visible, v.Gamma)
		if err != nil {
			return err
		}
		if !safe {
			return fmt.Errorf("provenance: module %s no longer %d-private over the recorded log", m.Name(), v.Gamma)
		}
	}
	return nil
}

// SecureViewRecorded is like SecureView but derives every module's
// requirement list from the projections of the *recorded* executions
// rather than from full module domains. Views computed this way are only
// guaranteed for the current log; re-audit with AuditRecorded after
// recording more executions.
func (s *Store) SecureViewRecorded(gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64) (*View, error) {
	prob, err := deriveRecorded(s, gamma, costs, privatizeCosts)
	if err != nil {
		return nil, err
	}
	return s.finishView(prob, gamma)
}
