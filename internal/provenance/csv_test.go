package provenance

import (
	"strings"
	"testing"

	"secureview/internal/privacy"
	"secureview/internal/workflow"
)

func TestCSVExportImportRoundTrip(t *testing.T) {
	src := fig1Store(t)
	var buf strings.Builder
	if err := src.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewStore(workflow.Fig1())
	if err := dst.ImportCSV(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if !dst.Relation().Equal(src.Relation()) {
		t.Fatal("round trip changed the log")
	}
}

func TestImportCSVRejectsForgedRows(t *testing.T) {
	// A row whose intermediate values contradict the module functionality
	// is not provenance of this workflow (integrity check).
	dst := NewStore(workflow.Fig1())
	forged := "a1,a2,a3,a4,a5,a6,a7\n0,0,1,1,1,1,0\n" // a3 should be 0 for (0,0)
	if err := dst.ImportCSV(strings.NewReader(forged)); err == nil {
		t.Fatal("forged row accepted")
	}
	valid := "a1,a2,a3,a4,a5,a6,a7\n0,0,0,1,1,1,0\n"
	if err := dst.ImportCSV(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if dst.Size() != 1 {
		t.Fatalf("size = %d, want 1", dst.Size())
	}
}

func TestViewExportCSVHidesColumns(t *testing.T) {
	s := fig1Store(t)
	view, err := s.SecureView(2, privacy.Uniform(s.Workflow().Schema().Names()...), nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := view.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, h := range view.HiddenSorted() {
		for _, col := range strings.Split(header, ",") {
			if col == h {
				t.Errorf("hidden attribute %q exported", h)
			}
		}
	}
}
