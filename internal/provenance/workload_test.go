package provenance

import (
	"strings"
	"testing"

	"secureview/internal/query"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

func fig1Store(t *testing.T) *Store {
	t.Helper()
	s := NewStore(workflow.Fig1())
	if err := s.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSecureViewForWorkloadProtectsHotQueries(t *testing.T) {
	s := fig1Store(t)
	// Users overwhelmingly query a6 and a7 (the final outputs); the view
	// should prefer hiding other attributes.
	wl := query.Workload{
		{Query: query.Query{Name: "final", Project: []string{"a6", "a7"}}, Weight: 100},
		{Query: query.Query{Name: "debug", Project: []string{"a3", "a4", "a5"}}, Weight: 1},
	}
	view, utility, err := s.SecureViewForWorkload(2, wl, nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	if view.Hidden.Has("a6") || view.Hidden.Has("a7") {
		t.Errorf("hot attributes hidden: %v", view.HiddenSorted())
	}
	if utility < 100.0/101 {
		t.Errorf("retained utility = %v, want >= 100/101", utility)
	}
	// The heavy query must be answerable; run it.
	res, err := view.Answer(wl[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("hot query returned nothing")
	}
}

func TestSecureViewForWorkloadFlipsWithWeights(t *testing.T) {
	s := fig1Store(t)
	// Now the intermediate attributes are hot instead.
	wl := query.Workload{
		{Query: query.Query{Name: "mid", Project: []string{"a3", "a4", "a5"}}, Weight: 100},
	}
	view, _, err := s.SecureViewForWorkload(2, wl, nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	for _, hot := range []string{"a3", "a4", "a5"} {
		if view.Hidden.Has(hot) {
			t.Errorf("hot attribute %s hidden: %v", hot, view.HiddenSorted())
		}
	}
}

func TestAnswerRefusesHiddenQueries(t *testing.T) {
	s := fig1Store(t)
	wl := query.Workload{
		{Query: query.Query{Name: "final", Project: []string{"a6", "a7"}}, Weight: 10},
	}
	view, _, err := s.SecureViewForWorkload(2, wl, nil, SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	hidden := view.HiddenSorted()
	if len(hidden) == 0 {
		t.Fatal("nothing hidden")
	}
	_, err = view.Answer(query.Query{Name: "snoop", Project: []string{hidden[0]}})
	if err == nil || !strings.Contains(err.Error(), "hidden") {
		t.Errorf("snooping query err = %v", err)
	}
}

func TestWorkloadValidateErrorPropagates(t *testing.T) {
	s := fig1Store(t)
	bad := query.Workload{{Query: query.Query{Name: "q", Project: []string{"zz"}}, Weight: 1}}
	if _, _, err := s.SecureViewForWorkload(2, bad, nil, SolverExact); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSecureViewRecordedAndAudit(t *testing.T) {
	w := workflow.Fig1()
	s := NewStore(w)
	// Record a partial log: two executions that coincide on the m2/m3
	// columns, forcing more hiding (see TestDeriveFromRecordedPartialLog).
	for _, x := range []relation.Tuple{{0, 1}, {1, 0}} {
		if err := s.Record(x); err != nil {
			t.Fatal(err)
		}
	}
	costs := map[string]float64{}
	for _, n := range w.Schema().Names() {
		costs[n] = 1
	}
	view, err := s.SecureViewRecorded(2, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditRecorded(s, view); err != nil {
		t.Fatalf("fresh view fails audit: %v", err)
	}
	// Growing the log can break a partial-log view: new input groups may
	// have too little output ambiguity. Record the remaining executions
	// and re-audit; if the audit fails, recomputing must succeed.
	if err := s.Record(relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(relation.Tuple{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := AuditRecorded(s, view); err != nil {
		view2, err := s.SecureViewRecorded(2, costs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditRecorded(s, view2); err != nil {
			t.Fatalf("recomputed view still fails audit: %v", err)
		}
	}
}

func TestAuditDetectsBreakage(t *testing.T) {
	// Build a view over a 1-row log where hiding nothing but one output is
	// safe, then grow the log so the same view fails.
	w := workflow.Fig1()
	s := NewStore(w)
	if err := s.Record(relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}
	costs := map[string]float64{}
	for _, n := range w.Schema().Names() {
		costs[n] = 1
	}
	view, err := s.SecureViewRecorded(2, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditRecorded(s, view); err != nil {
		t.Fatalf("fresh single-row view fails audit: %v", err)
	}
	for _, x := range []relation.Tuple{{0, 1}, {1, 0}, {1, 1}} {
		if err := s.Record(x); err != nil {
			t.Fatal(err)
		}
	}
	// The audit either still passes (the view was conservative enough) or
	// reports a specific module; both are legitimate, but the error, if
	// any, must name a module.
	if err := AuditRecorded(s, view); err != nil &&
		!strings.Contains(err.Error(), "module") {
		t.Errorf("audit error lacks module context: %v", err)
	}
}
