package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Random equality systems with a known feasible point: Ax = Ax0 for a
// random non-negative x0, minimize a random non-negative objective. The
// solver must report optimal with objective <= c·x0 and an exactly feasible
// point.
func TestQuickRandomEqualitySystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(n) // fewer equations than variables keeps it feasible
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 5
		}
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64() * 3
			p.SetObjective(j, c[j])
		}
		rows := make([]map[int]float64, m)
		for i := 0; i < m; i++ {
			coeffs := make(map[int]float64)
			rhs := 0.0
			for j := 0; j < n; j++ {
				v := rng.Float64()*4 - 2
				coeffs[j] = v
				rhs += v * x0[j]
			}
			rows[i] = coeffs
			p.MustAddConstraint(coeffs, EQ, rhs)
		}
		s := p.Solve()
		if s.Status != Optimal {
			return false
		}
		// Feasibility of the returned point.
		for i, coeffs := range rows {
			lhs := 0.0
			rhs := 0.0
			for j, v := range coeffs {
				lhs += v * s.X[j]
				rhs += v * x0[j]
			}
			if lhs < rhs-1e-5 || lhs > rhs+1e-5 {
				return false
			}
			_ = i
		}
		want := 0.0
		for j := range c {
			want += c[j] * x0[j]
		}
		return s.Objective <= want+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Redundant equality rows (duplicated constraints) must not break phase 1's
// artificial-variable elimination.
func TestRedundantEqualities(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 2)
	for i := 0; i < 4; i++ {
		p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3)
	}
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Objective, 3) {
		t.Fatalf("status=%v obj=%v, want optimal 3 (x=3,y=0)", s.Status, s.Objective)
	}
}

// A moderately large assignment-like LP: n suppliers, n consumers,
// doubly-stochastic constraints; the optimum of a random cost matrix must
// match a brute-force minimum over permutations for small n (Birkhoff: LP
// optimum is attained at a permutation).
func TestAssignmentPolytope(t *testing.T) {
	const n = 4
	rng := rand.New(rand.NewSource(99))
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 10
		}
	}
	p := NewProblem(n * n)
	for i := 0; i < n; i++ {
		rowC := make(map[int]float64)
		colC := make(map[int]float64)
		for j := 0; j < n; j++ {
			p.SetObjective(i*n+j, cost[i][j])
			rowC[i*n+j] = 1
			colC[j*n+i] = 1
		}
		p.MustAddConstraint(rowC, EQ, 1)
		p.MustAddConstraint(colC, EQ, 1)
	}
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	best := bruteForceAssignment(cost)
	if !approx(s.Objective, best) {
		t.Fatalf("LP objective = %v, permutation optimum = %v", s.Objective, best)
	}
}

func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := -1.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0.0
			for r, c := range perm {
				total += cost[r][c]
			}
			if best < 0 || total < best {
				best = total
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

// Many-variable covering LP stress: 60 variables, 40 constraints; just
// assert optimality, feasibility and bounded runtime (the test would time
// out if the simplex cycled).
func TestLargeCoveringLP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 60, 40
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjective(j, 1+rng.Float64()*9)
		if err := p.AddUpperBound(j, 1); err != nil {
			t.Fatal(err)
		}
	}
	type row struct {
		coeffs map[int]float64
		rhs    float64
	}
	rows := make([]row, m)
	for i := range rows {
		coeffs := make(map[int]float64)
		sum := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				v := 1 + rng.Float64()*2
				coeffs[j] = v
				sum += v
			}
		}
		rows[i] = row{coeffs, sum * 0.4}
		p.MustAddConstraint(coeffs, GE, rows[i].rhs)
	}
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	for _, r := range rows {
		lhs := 0.0
		for j, v := range r.coeffs {
			lhs += v * s.X[j]
		}
		if lhs < r.rhs-1e-5 {
			t.Fatalf("constraint violated: %v < %v", lhs, r.rhs)
		}
	}
}
