package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMinimization(t *testing.T) {
	// min x + y  s.t. x + y >= 2, x <= 3, y <= 3  → objective 2.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, GE, 2)
	p.MustAddConstraint(map[int]float64{0: 1}, LE, 3)
	p.MustAddConstraint(map[int]float64{1: 1}, LE, 3)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 2) {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x <= 2  (x,y >= 0) → optimum 10 at (2,2).
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -2)
	p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.MustAddConstraint(map[int]float64{0: 1}, LE, 2)
	s := p.Solve()
	if s.Status != Optimal || !approx(-s.Objective, 10) {
		t.Fatalf("status=%v obj=%v, want optimal -10", s.Status, s.Objective)
	}
	if !approx(s.X[0], 2) || !approx(s.X[1], 2) {
		t.Fatalf("x = %v, want (2,2)", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x + y  s.t. x + y = 5, x >= 1 → x=1, y=4, obj 6.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 5)
	p.MustAddConstraint(map[int]float64{0: 1}, GE, 1)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Objective, 6) {
		t.Fatalf("status=%v obj=%v, want optimal 6", s.Status, s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.MustAddConstraint(map[int]float64{0: 1}, GE, 5)
	p.MustAddConstraint(map[int]float64{0: 1}, LE, 2)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 0: unbounded below.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.MustAddConstraint(map[int]float64{0: 1}, GE, 0)
	if s := p.Solve(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with min x+y: equivalent to y >= x+1 → optimum (0,1).
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.MustAddConstraint(map[int]float64{0: 1, 1: -1}, LE, -1)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Objective, 1) {
		t.Fatalf("status=%v obj=%v, want optimal 1", s.Status, s.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Redundant constraints and a degenerate vertex must not cycle.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, GE, 1)
	p.MustAddConstraint(map[int]float64{0: 2, 1: 2}, GE, 2) // same halfplane
	p.MustAddConstraint(map[int]float64{0: 1}, LE, 1)
	p.MustAddConstraint(map[int]float64{1: 1}, LE, 1)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Objective, 1) {
		t.Fatalf("status=%v obj=%v, want optimal 1", s.Status, s.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Feasibility-only problem.
	p := NewProblem(2)
	p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.X[0]+s.X[1], 3) {
		t.Fatalf("status=%v x=%v", s.Status, s.X)
	}
}

func TestAddConstraintValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.AddConstraint(map[int]float64{5: 1}, LE, 1); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if err := p.AddConstraint(map[int]float64{0: 1}, LE, 1); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	if p.NumVars() != 2 {
		t.Error("NumVars wrong")
	}
}

func TestUpperBoundHelper(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	if err := p.AddUpperBound(0, 7); err != nil {
		t.Fatal(err)
	}
	s := p.Solve()
	if s.Status != Optimal || !approx(s.X[0], 7) {
		t.Fatalf("x = %v, want 7", s.X)
	}
}

// Set-cover LP relaxation: fractional optimum is at most the integral
// optimum. Universe {1,2,3}, sets {1,2},{2,3},{1,3}: integral optimum 2,
// fractional optimum 1.5 (each set at 1/2).
func TestSetCoverRelaxation(t *testing.T) {
	p := NewProblem(3)
	for i := 0; i < 3; i++ {
		p.SetObjective(i, 1)
	}
	p.MustAddConstraint(map[int]float64{0: 1, 2: 1}, GE, 1) // element 1
	p.MustAddConstraint(map[int]float64{0: 1, 1: 1}, GE, 1) // element 2
	p.MustAddConstraint(map[int]float64{1: 1, 2: 1}, GE, 1) // element 3
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Objective, 1.5) {
		t.Fatalf("status=%v obj=%v, want optimal 1.5", s.Status, s.Objective)
	}
}

// Property: the solution returned is feasible and no worse than a known
// feasible point, on random covering LPs (min c·x, Ax >= b, x <= 1 with
// all-ones feasible).
func TestQuickCoveringLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = 1 + rng.Float64()*9
			p.SetObjective(j, c[j])
			if err := p.AddUpperBound(j, 1); err != nil {
				return false
			}
		}
		type row struct {
			coeffs map[int]float64
			rhs    float64
		}
		rows := make([]row, m)
		for i := range rows {
			coeffs := make(map[int]float64)
			sum := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					v := 1 + rng.Float64()*4
					coeffs[j] = v
					sum += v
				}
			}
			// rhs <= sum ensures the all-ones point is feasible.
			rhs := sum * rng.Float64()
			rows[i] = row{coeffs, rhs}
			p.MustAddConstraint(coeffs, GE, rhs)
		}
		s := p.Solve()
		if s.Status != Optimal {
			return false
		}
		// Feasibility of the returned point.
		for _, r := range rows {
			lhs := 0.0
			for j, v := range r.coeffs {
				lhs += v * s.X[j]
			}
			if lhs < r.rhs-1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-9 || s.X[j] > 1+1e-6 {
				return false
			}
		}
		// No worse than the all-ones feasible point.
		allOnes := 0.0
		for _, v := range c {
			allOnes += v
		}
		return s.Objective <= allOnes+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(99).String() != "unknown" {
		t.Error("Status.String wrong")
	}
}
