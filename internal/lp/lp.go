// Package lp implements a small linear-programming solver: a dense
// two-phase simplex with Bland's anti-cycling rule.
//
// It is the substrate for the paper's approximation algorithms, which round
// fractional solutions of LP relaxations (Theorem 5's cardinality IP of
// Figure 3, Theorem 6's set-constraint LP, and the general-workflow LP of
// appendix C.4). Instance sizes there are modest (hundreds of variables),
// so an exact dense simplex is appropriate. Only the standard library is
// used.
package lp

import (
	"context"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is a ≤ constraint.
	LE Op = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective can decrease without bound.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

type constraint struct {
	coeffs map[int]float64
	op     Op
	rhs    float64
}

// Problem is a minimization LP over non-negative variables. Build with
// NewProblem, then set objective coefficients and add constraints.
type Problem struct {
	n           int
	objective   []float64
	constraints []constraint
	names       []string
}

// NewProblem returns a problem with numVars non-negative variables and an
// all-zero objective.
func NewProblem(numVars int) *Problem {
	return &Problem{
		n:         numVars,
		objective: make([]float64, numVars),
		names:     make([]string, numVars),
	}
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.n }

// SetName attaches a debug name to variable i.
func (p *Problem) SetName(i int, name string) { p.names[i] = name }

// SetObjective sets the coefficient of variable i in the minimized
// objective.
func (p *Problem) SetObjective(i int, coeff float64) {
	p.objective[i] = coeff
}

// AddConstraint adds Σ coeffs[i]·x_i (op) rhs. The coefficient map is
// copied. Unknown variable indices are rejected.
func (p *Problem) AddConstraint(coeffs map[int]float64, op Op, rhs float64) error {
	c := constraint{coeffs: make(map[int]float64, len(coeffs)), op: op, rhs: rhs}
	for i, v := range coeffs {
		if i < 0 || i >= p.n {
			return fmt.Errorf("lp: variable index %d out of range [0,%d)", i, p.n)
		}
		if v != 0 {
			c.coeffs[i] = v
		}
	}
	p.constraints = append(p.constraints, c)
	return nil
}

// MustAddConstraint is like AddConstraint but panics on error.
func (p *Problem) MustAddConstraint(coeffs map[int]float64, op Op, rhs float64) {
	if err := p.AddConstraint(coeffs, op, rhs); err != nil {
		panic(err)
	}
}

// AddUpperBound adds x_i <= bound.
func (p *Problem) AddUpperBound(i int, bound float64) error {
	return p.AddConstraint(map[int]float64{i: 1}, LE, bound)
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve runs the two-phase simplex and returns the optimal solution, or a
// Solution with Infeasible/Unbounded status. It is SolveCtx without
// cancellation.
func (p *Problem) Solve() Solution {
	sol, _ := p.SolveCtx(context.Background())
	return sol
}

// SolveCtx is Solve with cooperative cancellation: the simplex polls the
// context every few dozen pivots and returns ctx.Err() on expiry, so callers
// racing an LP against other solvers (the portfolio meta-solver) can cancel
// a losing simplex mid-flight instead of waiting out the full tableau.
func (p *Problem) SolveCtx(ctx context.Context) (Solution, error) {
	m := len(p.constraints)
	// Standard form: for each constraint, normalize rhs >= 0, then add a
	// slack (LE), a surplus plus artificial (GE), or an artificial (EQ).
	type rowSpec struct {
		coeffs map[int]float64
		op     Op
		rhs    float64
	}
	rows := make([]rowSpec, m)
	nSlack, nArt := 0, 0
	for i, c := range p.constraints {
		rc := rowSpec{coeffs: c.coeffs, op: c.op, rhs: c.rhs}
		if rc.rhs < 0 {
			flipped := make(map[int]float64, len(rc.coeffs))
			for j, v := range rc.coeffs {
				flipped[j] = -v
			}
			rc.coeffs = flipped
			rc.rhs = -rc.rhs
			switch rc.op {
			case LE:
				rc.op = GE
			case GE:
				rc.op = LE
			}
		}
		rows[i] = rc
		switch rc.op {
		case LE, GE:
			nSlack++
		}
		if rc.op != LE {
			nArt++
		}
	}
	total := p.n + nSlack + nArt
	// Tableau: m rows × (total + 1) columns (last column is rhs).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := p.n
	artCol := p.n + nSlack
	artStart := artCol
	for i, rc := range rows {
		row := make([]float64, total+1)
		for j, v := range rc.coeffs {
			row[j] = v
		}
		row[total] = rc.rhs
		switch rc.op {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		tab[i] = row
	}

	if nArt > 0 {
		// Phase 1: minimize the sum of artificial variables.
		phase1 := make([]float64, total)
		for j := artStart; j < artStart+nArt; j++ {
			phase1[j] = 1
		}
		status, err := simplex(ctx, tab, basis, phase1, total)
		if err != nil {
			return Solution{}, err
		}
		if status == Unbounded {
			// Phase 1 objective is bounded below by 0; unbounded cannot
			// happen, but guard anyway.
			return Solution{Status: Infeasible}, nil
		}
		sum := 0.0
		for i, b := range basis {
			if b >= artStart {
				sum += tab[i][total]
			}
		}
		if sum > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificial variables out of the basis.
		for i, b := range basis {
			if b < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it including the artificial column.
				for j := 0; j <= total; j++ {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective, with artificial columns frozen at zero.
	phase2 := make([]float64, total)
	copy(phase2, p.objective)
	for j := artStart; j < artStart+nArt; j++ {
		phase2[j] = math.Inf(1) // never re-enter
	}
	status, err := simplex(ctx, tab, basis, phase2, total)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, p.n)
	for i, b := range basis {
		if b < p.n {
			x[b] = tab[i][total]
		}
	}
	obj := 0.0
	for j, v := range p.objective {
		obj += v * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// simplex optimizes min cost·x over the tableau in place. Reduced costs are
// recomputed from the basis each iteration (revised-style on a dense
// tableau); Bland's rule guarantees termination. The context is polled every
// few dozen pivots.
func simplex(ctx context.Context, tab [][]float64, basis []int, cost []float64, total int) (Status, error) {
	m := len(tab)
	for iter := 0; ; iter++ {
		if iter&31 == 0 {
			if err := ctx.Err(); err != nil {
				return Optimal, err
			}
		}
		if iter > 200000 {
			// Safety valve; with Bland's rule this should be unreachable.
			return Optimal, nil
		}
		// Reduced costs: r_j = c_j - c_B · B^{-1} A_j. The tableau already
		// holds B^{-1}A, so r_j = c_j - Σ_i c_basis[i] · tab[i][j].
		enter := -1
		for j := 0; j < total; j++ {
			if math.IsInf(cost[j], 1) {
				continue
			}
			r := cost[j]
			for i := 0; i < m; i++ {
				cb := cost[basis[i]]
				if math.IsInf(cb, 1) {
					cb = 0
				}
				r -= cb * tab[i][j]
			}
			if r < -eps {
				enter = j // Bland: first (smallest) index
				break
			}
		}
		if enter == -1 {
			return Optimal, nil
		}
		// Ratio test with Bland tie-breaking on basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, nil
		}
		pivot(tab, basis, leave, enter, total)
	}
}

func pivot(tab [][]float64, basis []int, row, col, total int) {
	p := tab[row][col]
	for j := 0; j <= total; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
