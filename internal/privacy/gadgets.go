package privacy

import (
	"fmt"
	"math"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/sat"
)

// This file implements the adversarial constructions from the lower-bound
// proofs of section 3 / appendix A: the set-disjointness data-supplier
// gadget (Theorem 1), the UNSAT gadget (Theorem 2), and the exponential
// Safe-View-oracle adversary (Theorem 3). They serve as workload generators
// for the communication- and query-complexity experiments.

// DataSupplier supplies module outputs on demand and counts calls,
// modelling the data supplier of Theorem 1.
type DataSupplier struct {
	m     *module.Module
	calls int
}

// NewDataSupplier wraps a module.
func NewDataSupplier(m *module.Module) *DataSupplier { return &DataSupplier{m: m} }

// Eval returns m(x), counting the call.
func (d *DataSupplier) Eval(x relation.Tuple) (relation.Tuple, error) {
	d.calls++
	return d.m.Eval(x)
}

// Calls returns the number of supplier calls made.
func (d *DataSupplier) Calls() int { return d.calls }

// Module returns the wrapped module (for schema access; evaluating it
// directly bypasses counting).
func (d *DataSupplier) Module() *module.Module { return d.m }

// StreamingSafety decides whether the visible set is safe for Γ by pulling
// rows from the supplier one input at a time. When the visible set contains
// no input attributes (a single group, as in the Theorem 1 gadget), safety
// becomes certain as soon as enough distinct visible outputs have been
// seen, and the decision exits early; an unsafe answer always requires
// reading every row — the Ω(N) behaviour Theorem 1 proves unavoidable.
// It returns the decision and the number of supplier calls consumed.
func StreamingSafety(d *DataSupplier, inputs []relation.Tuple, visible relation.NameSet, gamma uint64) (bool, int, error) {
	m := d.Module()
	start := d.Calls()
	var hiddenOut []string
	for _, o := range m.OutputNames() {
		if !visible.Has(o) {
			hiddenOut = append(hiddenOut, o)
		}
	}
	vol, ok := m.Schema().DomainProduct(hiddenOut)
	if !ok {
		vol = math.MaxUint64
	}
	need := uint64(1)
	if vol < gamma {
		// Distinct visible outputs required per group: ceil(gamma / vol).
		need = (gamma + vol - 1) / vol
	}
	visIn := visible.FilterSorted(m.InputNames())
	visOut := visible.FilterSorted(m.OutputNames())
	singleGroup := len(visIn) == 0

	inCols := make([]int, len(visIn))
	for i, n := range visIn {
		inCols[i] = m.InputSchema().IndexOf(n)
	}
	outCols := make([]int, len(visOut))
	for i, n := range visOut {
		outCols[i] = m.OutputSchema().IndexOf(n)
	}
	groups := make(map[string]map[string]struct{})
	for _, x := range inputs {
		y, err := d.Eval(x)
		if err != nil {
			return false, d.Calls() - start, err
		}
		gk := tupleKey(x, inCols)
		ok := tupleKey(y, outCols)
		set := groups[gk]
		if set == nil {
			set = make(map[string]struct{})
			groups[gk] = set
		}
		set[ok] = struct{}{}
		if singleGroup && uint64(len(set)) >= need {
			return true, d.Calls() - start, nil
		}
	}
	for _, set := range groups {
		if uint64(len(set)) < need {
			return false, d.Calls() - start, nil
		}
	}
	return true, d.Calls() - start, nil
}

func tupleKey(t relation.Tuple, cols []int) string {
	k := ""
	for _, c := range cols {
		k += fmt.Sprintf("%d,", t[c])
	}
	return k
}

// DisjointnessGadget is the Theorem 1 construction. Given two subsets A and
// B of a universe of size n (as membership slices of length n), it builds
// the module m(a, b, id) = a ∧ b together with the n+1 gadget inputs: row i
// has (a,b) = (A[i], B[i]) and row n has (1, 0).
//
// Reproduction note: the paper states the visible set as {id, y}, but under
// its own Definition 2 / Lemma 2 semantics a visible id pins the output of
// every input, making that view unconditionally unsafe. The construction
// works exactly as intended (safe for Γ=2 iff A ∩ B ≠ ∅, and deciding it
// needs Ω(N) supplier calls) with id hidden, i.e. visible set {y}; we use
// that corrected view, returned as the second value.
func DisjointnessGadget(a, b []bool) (*module.Module, []relation.Tuple, relation.NameSet) {
	if len(a) != len(b) {
		panic("privacy: DisjointnessGadget needs |A| == |B|")
	}
	n := len(a)
	in := []relation.Attribute{
		{Name: "a", Domain: 2},
		{Name: "b", Domain: 2},
		{Name: "id", Domain: n + 1},
	}
	m := module.MustNew("disj", in, relation.Bools("y"),
		func(x relation.Tuple) relation.Tuple {
			return relation.Tuple{x[0] & x[1]}
		})
	inputs := make([]relation.Tuple, n+1)
	for i := 0; i < n; i++ {
		inputs[i] = relation.Tuple{b2i(a[i]), b2i(b[i]), i}
	}
	inputs[n] = relation.Tuple{1, 0, n}
	return m, inputs, relation.NewNameSet("y")
}

func b2i(v bool) relation.Value {
	if v {
		return 1
	}
	return 0
}

// UnsatGadget is the Theorem 2 construction: for a CNF formula g over ℓ
// variables, the module m(x1..xℓ, y) = ¬g(x) ∧ ¬y. The visible set
// {x1..xℓ, z} (hiding only y) is safe for Γ = 2 iff g is unsatisfiable.
func UnsatGadget(g *sat.CNF) (*module.Module, relation.NameSet) {
	inNames := make([]string, g.Vars+1)
	for i := 0; i < g.Vars; i++ {
		inNames[i] = fmt.Sprintf("x%d", i+1)
	}
	inNames[g.Vars] = "y"
	m := module.MustNew("unsat", relation.Bools(inNames...), relation.Bools("z"),
		func(t relation.Tuple) relation.Tuple {
			if !g.Eval(t[:g.Vars]) && t[g.Vars] == 0 {
				return relation.Tuple{1}
			}
			return relation.Tuple{0}
		})
	visible := relation.NewNameSet("z")
	for i := 0; i < g.Vars; i++ {
		visible.Add(inNames[i])
	}
	return m, visible
}

// Theorem3Instance is the adversarial function pair of Theorem 3 over ℓ
// boolean inputs (ℓ divisible by 4) and one boolean output y. Input costs
// are 1, the output cost is ℓ, so any safe set within budget C = ℓ/2 keeps
// y visible.
type Theorem3Instance struct {
	Ell int
}

// InputNames returns x1..xℓ.
func (t Theorem3Instance) InputNames() []string {
	names := make([]string, t.Ell)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i+1)
	}
	return names
}

// Costs returns the cost assignment of the proof: inputs 1, output ℓ.
func (t Theorem3Instance) Costs() Costs {
	c := Uniform(t.InputNames()...)
	c["y"] = float64(t.Ell)
	return c
}

// M1 returns the first adversary function: output 1 iff at least ℓ/4
// inputs are 1. Its cheapest safe hidden set has cost > 3ℓ/4.
func (t Theorem3Instance) M1() *module.Module {
	return module.Threshold("thm3-m1", t.InputNames(), "y", t.Ell/4)
}

// M2 returns the second adversary function for a special set A of exactly
// ℓ/2 input names: output 1 iff at least ℓ/4 inputs are 1 AND some input
// outside A is 1. Hiding exactly the inputs outside A (cost ℓ/2) is safe.
func (t Theorem3Instance) M2(special relation.NameSet) *module.Module {
	if len(special) != t.Ell/2 {
		panic(fmt.Sprintf("privacy: special set size %d, want %d", len(special), t.Ell/2))
	}
	names := t.InputNames()
	inSpecial := make([]bool, t.Ell)
	for i, n := range names {
		inSpecial[i] = special.Has(n)
	}
	return module.BoolGate("thm3-m2", names, "y", func(x []relation.Value) relation.Value {
		ones, outside := 0, false
		for i, v := range x {
			ones += v
			if v == 1 && !inSpecial[i] {
				outside = true
			}
		}
		if ones >= t.Ell/4 && outside {
			return 1
		}
		return 0
	})
}

// AdversaryOracle answers Safe-View queries according to properties (P1)
// and (P2) of the Theorem 3 proof, while tracking how much of the special-
// set candidate space the queries have eliminated. It is consistent with M1
// and with M2 for every special set not yet eliminated.
type AdversaryOracle struct {
	inst       Theorem3Instance
	queries    int
	eliminated float64 // upper bound on eliminated special-set candidates
}

// NewAdversaryOracle returns an adversary for ℓ inputs.
func NewAdversaryOracle(ell int) *AdversaryOracle {
	if ell%4 != 0 || ell < 4 {
		panic("privacy: Theorem 3 adversary needs ℓ divisible by 4")
	}
	return &AdversaryOracle{inst: Theorem3Instance{Ell: ell}}
}

// IsSafe answers per (P1)/(P2): YES iff fewer than ℓ/4 input attributes are
// visible. Queries with at least ℓ/4 visible inputs are answered NO and may
// eliminate candidate special sets (those containing the visible inputs).
func (a *AdversaryOracle) IsSafe(visible relation.NameSet) (bool, error) {
	a.queries++
	vis := 0
	for _, n := range a.inst.InputNames() {
		if visible.Has(n) {
			vis++
		}
	}
	if vis < a.inst.Ell/4 {
		return true, nil
	}
	if vis <= a.inst.Ell/2 {
		// A NO answer is inconsistent with special sets A ⊇ visible-inputs;
		// at most C(ℓ - vis, ℓ/2 - vis) candidates die.
		a.eliminated += binom(a.inst.Ell-vis, a.inst.Ell/2-vis)
	}
	return false, nil
}

// Queries returns the number of oracle calls answered.
func (a *AdversaryOracle) Queries() int { return a.queries }

// CandidateSpace returns C(ℓ, ℓ/2), the number of possible special sets.
func (a *AdversaryOracle) CandidateSpace() float64 { return binom(a.inst.Ell, a.inst.Ell/2) }

// RemainingCandidates returns a lower bound on the number of special sets
// still consistent with every answer given so far. While this is positive,
// no algorithm can distinguish M1 from all M2 variants.
func (a *AdversaryOracle) RemainingCandidates() float64 {
	r := a.CandidateSpace() - a.eliminated
	if r < 0 {
		return 0
	}
	return r
}

// QueryLowerBound returns the Theorem 3 bound C(ℓ,ℓ/2)/C(3ℓ/4,ℓ/4) >=
// (4/3)^(ℓ/2) on the number of oracle calls needed to certify that no
// special set exists.
func QueryLowerBound(ell int) float64 {
	return binom(ell, ell/2) / binom(3*ell/4, ell/4)
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lg - lk - lnk)
}
