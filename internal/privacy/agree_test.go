package privacy

import (
	"testing"

	"secureview/internal/module"
	"secureview/internal/relation"
)

// TestOraclesAgreeCompiledVsInterpreted pins the compiled integer-coded
// oracle against the interpreted Lemma 4 semantics on every subset of
// Figure 1's m1 attributes.
func TestOraclesAgreeCompiledVsInterpreted(t *testing.T) {
	mv := NewModuleView(module.Fig1M1())
	comp, err := mv.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []uint64{2, 4, 8} {
		gamma := gamma
		interpreted := OracleFunc(func(v relation.NameSet) (bool, error) {
			return mv.IsSafe(v, gamma)
		})
		compiled := OracleFunc(func(v relation.NameSet) (bool, error) {
			return comp.IsSafe(comp.MaskOf(v), gamma), nil
		})
		disagree, compared, err := OraclesAgree(mv.Attrs(), interpreted, compiled)
		if err != nil {
			t.Fatal(err)
		}
		if disagree != nil {
			t.Fatalf("Γ=%d: oracles disagree on %v", gamma, disagree)
		}
		if compared != 1<<len(mv.Attrs()) {
			t.Fatalf("Γ=%d: compared %d subsets, want %d", gamma, compared, 1<<len(mv.Attrs()))
		}
	}
}

// TestOraclesAgreeFindsDisagreement verifies the comparator actually
// reports a mismatch and the witness set.
func TestOraclesAgreeFindsDisagreement(t *testing.T) {
	always := OracleFunc(func(relation.NameSet) (bool, error) { return true, nil })
	exceptA := OracleFunc(func(v relation.NameSet) (bool, error) { return !v.Has("a"), nil })
	disagree, _, err := OraclesAgree([]string{"a", "b"}, always, exceptA)
	if err != nil {
		t.Fatal(err)
	}
	if disagree == nil || !disagree.Has("a") {
		t.Fatalf("want a disagreement witness containing a, got %v", disagree)
	}
}

// TestOraclesAgreeUniverseCap rejects universes too large to enumerate.
func TestOraclesAgreeUniverseCap(t *testing.T) {
	attrs := make([]string, 21)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	always := OracleFunc(func(relation.NameSet) (bool, error) { return true, nil })
	if _, _, err := OraclesAgree(attrs, always, always); err == nil {
		t.Fatal("want error for 21-attribute universe")
	}
}
