package privacy

import (
	"testing"

	"secureview/internal/relation"
	"secureview/internal/search"
)

// TestMinCostTieBreakLexSmallest pins the satellite contract: among
// equal-cost optima the engine returns the hidden set that is
// lexicographically smallest as a sorted name sequence, at every
// parallelism level.
func TestMinCostTieBreakLexSmallest(t *testing.T) {
	mv := fig1View()
	costs := Uniform(mv.Attrs()...)
	const gamma = 4

	// Reference: enumerate every subset, collect the safe optima, pick the
	// lexicographically smallest by sorted-name-sequence comparison.
	attrs := mv.Attrs()
	all := relation.NewNameSet(attrs...)
	bestCost := -1.0
	var optima [][]string
	for mask := 0; mask < 1<<len(attrs); mask++ {
		hidden := make(relation.NameSet)
		cost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				hidden.Add(a)
				cost += costs.Of(a)
			}
		}
		safe, err := mv.IsSafe(all.Minus(hidden), gamma)
		if err != nil {
			t.Fatal(err)
		}
		if !safe {
			continue
		}
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			optima = optima[:0]
		}
		if cost == bestCost {
			optima = append(optima, hidden.Sorted())
		}
	}
	if len(optima) < 2 {
		t.Fatalf("test instance has %d optima; need ties to exercise the tie-break", len(optima))
	}
	want := optima[0]
	for _, o := range optima[1:] {
		if lexLessNames(o, want) {
			want = o
		}
	}

	for _, par := range []int{1, 4} {
		res, err := mv.MinCostSafeSubsetOpts(costs, gamma, search.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Cost != bestCost {
			t.Fatalf("par %d: cost %v, want %v", par, res.Cost, bestCost)
		}
		got := res.Hidden.Sorted()
		if !equalNames(got, want) {
			t.Errorf("par %d: hidden %v, want lex-smallest optimum %v (all optima: %v)",
				par, got, want, optima)
		}
	}
}

func lexLessNames(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSearchResultCounters pins the satellite contract on Checked: it counts
// safety tests actually performed, Pruned the subsets decided without one,
// and together they cover the whole 2^k space.
func TestSearchResultCounters(t *testing.T) {
	mv := fig1View()
	costs := Uniform(mv.Attrs()...)
	k := len(mv.Attrs())

	res, err := mv.MinCostSafeSubset(costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked+res.Pruned != 1<<k {
		t.Errorf("Checked %d + Pruned %d != 2^%d", res.Checked, res.Pruned, k)
	}
	if res.Checked == 1<<k {
		t.Error("engine performed a safety test for every subset; pruning is dead")
	}

	// Checked must equal actual oracle invocations: route the same search
	// through a counted oracle.
	counting := &CountingOracle{Inner: OracleFor(mv, 4)}
	res2, err := EngineMinCostWithOracle(mv.Attrs(), costs, counting, search.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Checked != counting.Calls() {
		t.Errorf("Checked = %d, oracle calls = %d", res2.Checked, counting.Calls())
	}
	if res2.Cost != res.Cost || res2.Found != res.Found {
		t.Errorf("oracle-backed engine disagrees: %+v vs %+v", res2, res)
	}
}

// TestUnsatisfiableKeepsCounters: even when nothing is safe the counters
// must cover the space.
func TestUnsatisfiableCounters(t *testing.T) {
	mv := fig1View()
	res, err := mv.MinCostSafeSubset(Uniform(mv.Attrs()...), 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("impossible Γ reported satisfiable")
	}
	if res.Checked+res.Pruned != 1<<len(mv.Attrs()) {
		t.Errorf("Checked %d + Pruned %d != %d", res.Checked, res.Pruned, 1<<len(mv.Attrs()))
	}
}

func TestMemoOracle(t *testing.T) {
	mv := fig1View()
	counting := &CountingOracle{Inner: OracleFor(mv, 4)}
	memo := NewMemoOracle(counting)
	v := relation.NewNameSet("a1", "a3", "a5")
	for i := 0; i < 3; i++ {
		if _, err := memo.IsSafe(v); err != nil {
			t.Fatal(err)
		}
	}
	if counting.Calls() != 1 {
		t.Errorf("inner oracle called %d times, want 1", counting.Calls())
	}
	if memo.Len() != 1 {
		t.Errorf("memo holds %d entries, want 1", memo.Len())
	}
	// A different set misses.
	if _, err := memo.IsSafe(relation.NewNameSet("a1")); err != nil {
		t.Fatal(err)
	}
	if counting.Calls() != 2 {
		t.Errorf("inner oracle called %d times, want 2", counting.Calls())
	}
}

// The engine and the assumption-free oracle scan must agree on monotone
// (real-module) oracles.
func TestEngineAgreesWithOracleScan(t *testing.T) {
	mv := fig1View()
	costs := Uniform(mv.Attrs()...)
	engineRes, err := EngineMinCostWithOracle(mv.Attrs(), costs,
		&CountingOracle{Inner: OracleFor(mv, 4)}, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hidden, cost, _, err := MinCostSafeSubsetWithOracle(mv.Attrs(), costs,
		&CountingOracle{Inner: OracleFor(mv, 4)}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if hidden == nil != !engineRes.Found {
		t.Fatalf("found mismatch: scan %v, engine %v", hidden, engineRes.Found)
	}
	if engineRes.Found && cost != engineRes.Cost {
		t.Errorf("cost mismatch: scan %v, engine %v", cost, engineRes.Cost)
	}
}

// AllSafeVisibleSubsets and MinimalSafeHiddenSets keep their documented
// deterministic order under parallel execution.
func TestEnumerationDeterministicOrder(t *testing.T) {
	mv := fig1View()
	seq, err := mv.AllSafeVisibleSubsetsOpts(4, search.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := mv.AllSafeVisibleSubsetsOpts(4, search.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("safe-set counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !seq[i].Equal(par[i]) {
			t.Errorf("safe set %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
	mseq, err := mv.MinimalSafeHiddenSetsOpts(4, search.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	mpar, err := mv.MinimalSafeHiddenSetsOpts(4, search.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mseq) != len(mpar) {
		t.Fatalf("minimal-set counts differ: %d vs %d", len(mseq), len(mpar))
	}
	for i := range mseq {
		if !mseq[i].Equal(mpar[i]) {
			t.Errorf("minimal set %d differs: %v vs %v", i, mseq[i], mpar[i])
		}
	}
}
