package privacy

import (
	"fmt"

	"secureview/internal/relation"
)

// OracleFunc adapts a plain function to the SafeViewOracle interface, so
// ad-hoc oracles (closures over a ModuleView, a compiled oracle, a mock)
// can be compared or driven by the engine without a named type.
type OracleFunc func(visible relation.NameSet) (bool, error)

// IsSafe implements SafeViewOracle.
func (f OracleFunc) IsSafe(visible relation.NameSet) (bool, error) { return f(visible) }

// OraclesAgree exhaustively compares two Safe-View oracles over every
// subset of attrs. disagree is the first visible set on which the two
// return different verdicts, and is nil when they agree everywhere or when
// an oracle errors (the erroring subset is reported inside err instead, so
// a non-nil disagree ALWAYS means a semantic disagreement). compared counts
// the subsets on which both oracles answered, the disagreeing one included.
// Universes beyond 20 attributes (2^20 calls per oracle) are refused. The
// differential harness uses it to pin the compiled integer-coded oracle
// against the interpreted Lemma 4 semantics on every generated module.
func OraclesAgree(attrs []string, a, b SafeViewOracle) (disagree relation.NameSet, compared int, err error) {
	if len(attrs) > 20 {
		return nil, 0, fmt.Errorf("privacy: %d attributes too many for exhaustive oracle comparison", len(attrs))
	}
	for mask := 0; mask < 1<<len(attrs); mask++ {
		visible := make(relation.NameSet)
		for i, name := range attrs {
			if mask&(1<<i) != 0 {
				visible.Add(name)
			}
		}
		sa, err := a.IsSafe(visible)
		if err != nil {
			return nil, mask, fmt.Errorf("privacy: first oracle failed on %v: %w", visible, err)
		}
		sb, err := b.IsSafe(visible)
		if err != nil {
			return nil, mask, fmt.Errorf("privacy: second oracle failed on %v: %w", visible, err)
		}
		if sa != sb {
			return visible, mask + 1, nil
		}
	}
	return nil, 1 << len(attrs), nil
}
