package privacy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/relation"
)

func TestUniformPriorRecoversOneOverGamma(t *testing.T) {
	mv := NewModuleView(module.Fig1M1())
	v := relation.NewNameSet("a1", "a3", "a5") // |OUT| = 4 for every input
	x := relation.Tuple{0, 0}
	prior := UniformPrior(relation.MustSchema(relation.Bools("a3", "a4", "a5")...), "a4")
	got, err := mv.GuessProbability(v, x, prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("uniform guess probability = %v, want 1/4", got)
	}
	// Empty prior map (implicit uniform) agrees.
	got2, err := mv.GuessProbability(v, x, Prior{})
	if err != nil || math.Abs(got2-0.25) > 1e-12 {
		t.Fatalf("implicit uniform = %v (%v), want 1/4", got2, err)
	}
}

func TestSkewedPriorBreaksGamma(t *testing.T) {
	// Section 6 caveat: with a skewed prior on the hidden output a4, the
	// adversary's best guess exceeds 1/Γ = 1/4 even though |OUT| = 4.
	mv := NewModuleView(module.Fig1M1())
	v := relation.NewNameSet("a1", "a3", "a5")
	x := relation.Tuple{0, 0}
	prior := Prior{"a4": []float64{0.9, 0.1}}
	got, err := mv.GuessProbability(v, x, prior)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0.25 {
		t.Fatalf("skewed prior guess probability = %v, want > 1/4", got)
	}
	// OUT for x=(0,0) has two candidates with a4=0 and two with a4=1, each
	// visible pattern distinct, so the best candidate carries 0.9/2 of the
	// mass: 0.45.
	if math.Abs(got-0.45) > 1e-9 {
		t.Fatalf("guess probability = %v, want 0.45", got)
	}
}

func TestPriorValidate(t *testing.T) {
	s := relation.MustSchema(relation.Bools("y1", "y2")...)
	cases := []struct {
		name    string
		p       Prior
		wantErr bool
	}{
		{"ok", Prior{"y1": {0.3, 0.7}}, false},
		{"unknown attr", Prior{"zz": {0.5, 0.5}}, true},
		{"wrong arity", Prior{"y1": {1}}, true},
		{"negative", Prior{"y1": {-0.5, 1.5}}, true},
		{"not normalized", Prior{"y1": {0.5, 0.4}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(s); (err != nil) != tc.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestGuessProbabilityZeroMass(t *testing.T) {
	mv := NewModuleView(module.Fig1M1())
	v := relation.NewNameSet("a1", "a3", "a5")
	prior := Prior{"a4": []float64{1, 0}}
	// Mass zero only on a4=1 candidates; total mass positive, so fine.
	if _, err := mv.GuessProbability(v, relation.Tuple{0, 0}, prior); err != nil {
		t.Fatalf("partial-support prior rejected: %v", err)
	}
}

// Property: the uniform prior always yields exactly 1/|OUT|, and any prior
// yields a probability in [1/|OUT|, 1].
func TestQuickGuessProbabilityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := module.Random("m", relation.Bools("x1", "x2"), relation.Bools("y1", "y2"), rng)
		mv := NewModuleView(m)
		visible := relation.NewNameSet("x1", "x2")
		if rng.Intn(2) == 0 {
			visible.Add("y1")
		}
		x := relation.Tuple{rng.Intn(2), rng.Intn(2)}
		n, err := mv.OutSize(visible, x)
		if err != nil || n == 0 {
			return false
		}
		uni, err := mv.GuessProbability(visible, x, Prior{})
		if err != nil || math.Abs(uni-1/float64(n)) > 1e-9 {
			return false
		}
		a := 0.1 + 0.8*rng.Float64()
		skew := Prior{"y2": []float64{a, 1 - a}}
		got, err := mv.GuessProbability(visible, x, skew)
		if err != nil {
			return false
		}
		return got >= 1/float64(n)-1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
