package privacy

import (
	"strings"
	"sync"
	"sync/atomic"

	"secureview/internal/oracle"
	"secureview/internal/relation"
)

// CountingOracle wraps a SafeViewOracle and counts calls. It is safe for
// concurrent use, so it can sit under the parallel search engine.
type CountingOracle struct {
	Inner SafeViewOracle
	calls atomic.Int64
}

// IsSafe delegates and increments the call counter.
func (c *CountingOracle) IsSafe(visible relation.NameSet) (bool, error) {
	c.calls.Add(1)
	return c.Inner.IsSafe(visible)
}

// Calls returns the number of oracle queries made so far.
func (c *CountingOracle) Calls() int { return int(c.calls.Load()) }

// MemoOracle wraps a SafeViewOracle with a concurrency-safe memo keyed by
// the visible set, answering repeated queries without consulting the inner
// oracle again. It is the name-set-level counterpart of search.Memoize:
// layer it over a CountingOracle to see how many DISTINCT subsets a search
// really tested, or over an expensive oracle (world enumeration, partial-log
// analysis) shared by several searches. Errors are not memoized.
//
// When the inner oracle is compiled-backed (OracleFor on a compilable
// view), the memo is keyed by the compiled visibility mask — a uint32
// instead of a sorted, concatenated name string — so lookups allocate
// nothing.
type MemoOracle struct {
	inner SafeViewOracle
	comp  *oracle.Compiled // non-nil: mask-keyed fast path
	mu    sync.RWMutex
	memo  map[string]bool
	masks map[oracle.Mask]bool
}

// NewMemoOracle returns a memoizing wrapper around inner.
func NewMemoOracle(inner SafeViewOracle) *MemoOracle {
	o := &MemoOracle{inner: inner}
	if c, ok := inner.(compiledOracle); ok {
		o.comp = c.c
		o.masks = make(map[oracle.Mask]bool)
	} else {
		o.memo = make(map[string]bool)
	}
	return o
}

func memoKey(visible relation.NameSet) string {
	return strings.Join(visible.Sorted(), "\x00")
}

// IsSafe answers from the memo when possible, else consults the inner
// oracle. Concurrent misses on the same key may both consult the inner
// oracle; both store the same answer, so the memo stays consistent.
func (o *MemoOracle) IsSafe(visible relation.NameSet) (bool, error) {
	if o.comp != nil {
		key := o.comp.MaskOf(visible)
		o.mu.RLock()
		safe, ok := o.masks[key]
		o.mu.RUnlock()
		if ok {
			return safe, nil
		}
		safe, err := o.inner.IsSafe(visible)
		if err != nil {
			return false, err
		}
		o.mu.Lock()
		o.masks[key] = safe
		o.mu.Unlock()
		return safe, nil
	}
	key := memoKey(visible)
	o.mu.RLock()
	safe, ok := o.memo[key]
	o.mu.RUnlock()
	if ok {
		return safe, nil
	}
	safe, err := o.inner.IsSafe(visible)
	if err != nil {
		return false, err
	}
	o.mu.Lock()
	o.memo[key] = safe
	o.mu.Unlock()
	return safe, nil
}

// Len returns the number of memoized answers.
func (o *MemoOracle) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.comp != nil {
		return len(o.masks)
	}
	return len(o.memo)
}
