package privacy

import (
	"strings"
	"sync"
	"sync/atomic"

	"secureview/internal/relation"
)

// CountingOracle wraps a SafeViewOracle and counts calls. It is safe for
// concurrent use, so it can sit under the parallel search engine.
type CountingOracle struct {
	Inner SafeViewOracle
	calls atomic.Int64
}

// IsSafe delegates and increments the call counter.
func (c *CountingOracle) IsSafe(visible relation.NameSet) (bool, error) {
	c.calls.Add(1)
	return c.Inner.IsSafe(visible)
}

// Calls returns the number of oracle queries made so far.
func (c *CountingOracle) Calls() int { return int(c.calls.Load()) }

// MemoOracle wraps a SafeViewOracle with a concurrency-safe memo keyed by
// the visible set, answering repeated queries without consulting the inner
// oracle again. It is the name-set-level counterpart of search.Memoize:
// layer it over a CountingOracle to see how many DISTINCT subsets a search
// really tested, or over an expensive oracle (world enumeration, partial-log
// analysis) shared by several searches. Errors are not memoized.
type MemoOracle struct {
	inner SafeViewOracle
	mu    sync.RWMutex
	memo  map[string]bool
}

// NewMemoOracle returns a memoizing wrapper around inner.
func NewMemoOracle(inner SafeViewOracle) *MemoOracle {
	return &MemoOracle{inner: inner, memo: make(map[string]bool)}
}

func memoKey(visible relation.NameSet) string {
	return strings.Join(visible.Sorted(), "\x00")
}

// IsSafe answers from the memo when possible, else consults the inner
// oracle. Concurrent misses on the same key may both consult the inner
// oracle; both store the same answer, so the memo stays consistent.
func (o *MemoOracle) IsSafe(visible relation.NameSet) (bool, error) {
	key := memoKey(visible)
	o.mu.RLock()
	safe, ok := o.memo[key]
	o.mu.RUnlock()
	if ok {
		return safe, nil
	}
	safe, err := o.inner.IsSafe(visible)
	if err != nil {
		return false, err
	}
	o.mu.Lock()
	o.memo[key] = safe
	o.mu.Unlock()
	return safe, nil
}

// Len returns the number of memoized answers.
func (o *MemoOracle) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.memo)
}
