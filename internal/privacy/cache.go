package privacy

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"secureview/internal/relation"
	"secureview/internal/search"
)

// Cache memoizes standalone analyses across workflows. The paper's section
// 3.2 remark motivates it directly: "a given module is often used in many
// workflows. For example, sequence comparison modules, like BLAST or FASTA,
// are used in many different biological workflows... The effort invested in
// deriving safe subsets for a module is thus amortized over all uses."
//
// Entries are keyed by a fingerprint of the module's functionality — the
// canonical form of its relation and the attribute split — together with Γ,
// so renamed copies of the same function share an entry only when their
// attribute names coincide (names matter: the safe subsets are name sets).
// Cache is safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string][]relation.NameSet
	hits    int
	misses  int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string][]relation.NameSet)}
}

// fingerprint hashes the module view's schema, attribute split, sorted rows
// and Γ.
func fingerprint(mv ModuleView, gamma uint64) string {
	h := sha256.New()
	for _, n := range mv.Inputs {
		fmt.Fprintf(h, "i:%s;", n)
	}
	for _, n := range mv.Outputs {
		fmt.Fprintf(h, "o:%s;", n)
	}
	for i := 0; i < mv.Rel.Schema().Len(); i++ {
		a := mv.Rel.Schema().Attr(i)
		fmt.Fprintf(h, "d:%s=%d;", a.Name, a.Domain)
	}
	var buf [8]byte
	for _, row := range mv.Rel.SortedRows() {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		h.Write([]byte{0xff})
	}
	binary.LittleEndian.PutUint64(buf[:], gamma)
	h.Write(buf[:])
	return string(h.Sum(nil))
}

// MinimalSafeHiddenSets returns the module view's minimal safe hidden sets,
// computing and storing them on first use.
func (c *Cache) MinimalSafeHiddenSets(mv ModuleView, gamma uint64) ([]relation.NameSet, error) {
	return c.MinimalSafeHiddenSetsOpts(mv, gamma, search.Options{})
}

// MinimalSafeHiddenSetsOpts is MinimalSafeHiddenSets with engine options: a
// cache miss runs the pruned search with the given worker parallelism, so
// the memoized layer and the parallel engine compose.
func (c *Cache) MinimalSafeHiddenSetsOpts(mv ModuleView, gamma uint64, opts search.Options) ([]relation.NameSet, error) {
	key := fingerprint(mv, gamma)
	c.mu.Lock()
	cached, ok := c.entries[key]
	if ok {
		c.hits++
		c.mu.Unlock()
		return cached, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock; concurrent misses on the same key do
	// redundant work but stay correct (last write wins with equal value).
	sets, err := mv.MinimalSafeHiddenSetsOpts(gamma, opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.entries[key] = sets
	c.mu.Unlock()
	return sets, nil
}

// Stats returns cumulative cache hits and misses.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of distinct cached analyses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
