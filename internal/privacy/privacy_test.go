package privacy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/relation"
)

func fig1View() ModuleView { return NewModuleView(module.Fig1M1()) }

// Example 3 of the paper, first claim: V = {a1,a3,a5} is safe for m1 and
// Γ = 4, and for x = (0,0) the OUT set is exactly
// {(0,0,1),(0,1,1),(1,0,0),(1,1,0)}.
func TestExample3SafeSubset(t *testing.T) {
	mv := fig1View()
	v := relation.NewNameSet("a1", "a3", "a5")
	safe, err := mv.IsSafe(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Fatal("V={a1,a3,a5} not safe for Γ=4")
	}
	out, err := mv.OutSet(v, relation.Tuple{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"[0 0 1]": true, "[0 1 1]": true, "[1 0 0]": true, "[1 1 0]": true}
	if len(out) != 4 {
		t.Fatalf("|OUT| = %d, want 4 (%v)", len(out), out)
	}
	for _, y := range out {
		k := relation.Tuple.Clone(y)
		s := "["
		for i, v := range k {
			if i > 0 {
				s += " "
			}
			s += string(rune('0' + v))
		}
		s += "]"
		if !want[s] {
			t.Errorf("unexpected OUT element %v", y)
		}
	}
	n, err := mv.OutSize(v, relation.Tuple{0, 0})
	if err != nil || n != 4 {
		t.Errorf("OutSize = %d (%v), want 4", n, err)
	}
}

// Example 3, second claim: hiding the two output attributes a4, a5 (visible
// {a1,a2,a3}) is safe for Γ = 4.
func TestExample3HideTwoOutputs(t *testing.T) {
	mv := fig1View()
	safe, err := mv.IsSafe(relation.NewNameSet("a1", "a2", "a3"), 4)
	if err != nil || !safe {
		t.Fatalf("V={a1,a2,a3} safe=%v err=%v, want true", safe, err)
	}
	// Hiding any two of the three outputs works.
	for _, pair := range [][2]string{{"a3", "a4"}, {"a3", "a5"}, {"a4", "a5"}} {
		vis := relation.NewNameSet("a1", "a2", "a3", "a4", "a5").
			Minus(relation.NewNameSet(pair[0], pair[1]))
		safe, err := mv.IsSafe(vis, 4)
		if err != nil || !safe {
			t.Errorf("hiding {%s,%s}: safe=%v err=%v, want true", pair[0], pair[1], safe, err)
		}
	}
}

// Example 3, third claim: V = {a3,a4,a5} (hiding only the inputs) is NOT
// safe for Γ = 4: every input has exactly three possible outputs.
func TestExample3InputsOnlyUnsafe(t *testing.T) {
	mv := fig1View()
	v := relation.NewNameSet("a3", "a4", "a5")
	safe, err := mv.IsSafe(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Fatal("V={a3,a4,a5} reported safe for Γ=4")
	}
	min, err := mv.MinOutSize(v)
	if err != nil || min != 3 {
		t.Fatalf("MinOutSize = %d (%v), want 3", min, err)
	}
	if safe, _ := mv.IsSafe(v, 3); !safe {
		t.Error("V={a3,a4,a5} should be safe for Γ=3")
	}
}

func TestOutSetSizeMatchesOutSize(t *testing.T) {
	mv := fig1View()
	views := []relation.NameSet{
		relation.NewNameSet("a1", "a3", "a5"),
		relation.NewNameSet("a1", "a2", "a3"),
		relation.NewNameSet("a3", "a4", "a5"),
		relation.NewNameSet(),
		relation.NewNameSet("a1", "a2", "a3", "a4", "a5"),
	}
	for _, v := range views {
		relation.EachTuple(relation.MustSchema(relation.Bools("a1", "a2")...), func(x relation.Tuple) bool {
			set, err := mv.OutSet(v, x)
			if err != nil {
				t.Fatal(err)
			}
			n, err := mv.OutSize(v, x)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(len(set)) != n {
				t.Errorf("V=%v x=%v: |OutSet|=%d OutSize=%d", v, x, len(set), n)
			}
			return true
		})
	}
}

func TestFullyVisibleGivesOutOne(t *testing.T) {
	mv := fig1View()
	all := relation.NewNameSet(mv.Attrs()...)
	min, err := mv.MinOutSize(all)
	if err != nil || min != 1 {
		t.Fatalf("fully visible MinOutSize = %d (%v), want 1", min, err)
	}
}

func TestFullyHiddenGivesRangeSize(t *testing.T) {
	mv := fig1View()
	min, err := mv.MinOutSize(relation.NewNameSet())
	if err != nil || min != 8 {
		t.Fatalf("fully hidden MinOutSize = %d (%v), want 2^3 = 8", min, err)
	}
}

func TestEmptyRelation(t *testing.T) {
	m := module.Fig1M1()
	mv := ModuleView{
		Rel:     relation.New(m.Schema()),
		Inputs:  m.InputNames(),
		Outputs: m.OutputNames(),
	}
	min, err := mv.MinOutSize(relation.NewNameSet())
	if err != nil || min != 0 {
		t.Fatalf("empty relation MinOutSize = %d (%v), want 0", min, err)
	}
}

func TestOutSizeUnknownInput(t *testing.T) {
	m := module.Fig1M1()
	mv := ModuleView{
		Rel:     relation.MustFromRows(m.Schema(), [][]relation.Value{{0, 0, 0, 1, 1}}),
		Inputs:  m.InputNames(),
		Outputs: m.OutputNames(),
	}
	if _, err := mv.OutSize(relation.NewNameSet(), relation.Tuple{1, 1}); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := mv.OutSet(relation.NewNameSet(), relation.Tuple{1, 1}); err == nil {
		t.Error("unknown input accepted by OutSet")
	}
}

func TestMinCostSafeSubsetFig1(t *testing.T) {
	mv := fig1View()
	costs := Uniform(mv.Attrs()...)
	res, err := mv.MinCostSafeSubset(costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no safe subset found")
	}
	if res.Cost != 2 {
		t.Fatalf("min cost = %v, want 2 (hide two attributes)", res.Cost)
	}
	// The returned subset must actually be safe.
	safe, err := mv.IsSafe(res.Visible, 4)
	if err != nil || !safe {
		t.Errorf("returned subset unsafe: %v err=%v", res.Hidden, err)
	}
}

func TestMinCostRespectsWeights(t *testing.T) {
	mv := fig1View()
	// Make a4 and a5 expensive; the optimum must avoid hiding both.
	costs := Costs{"a1": 1, "a2": 1, "a3": 1, "a4": 10, "a5": 10}
	res, err := mv.MinCostSafeSubset(costs, 4)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	if res.Hidden.Has("a4") && res.Hidden.Has("a5") {
		t.Errorf("optimum hides both expensive attributes: %v (cost %v)", res.Hidden, res.Cost)
	}
	// {a2, a4} (cost 11) beats {a4, a5} (cost 20); best overall is {a2,a3}?
	// Verify optimality by exhaustive re-check.
	best := res.Cost
	attrs := mv.Attrs()
	for mask := 0; mask < 1<<len(attrs); mask++ {
		hidden := make(relation.NameSet)
		cost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				hidden.Add(a)
				cost += costs.Of(a)
			}
		}
		safe, _ := mv.IsSafe(relation.NewNameSet(attrs...).Minus(hidden), 4)
		if safe && cost < best {
			t.Fatalf("found cheaper safe subset %v cost %v < %v", hidden, cost, best)
		}
	}
}

func TestMinCostUnsatisfiableGamma(t *testing.T) {
	mv := fig1View()
	// Range size is 8; Γ = 9 is impossible even hiding everything.
	res, err := mv.MinCostSafeSubset(Uniform(mv.Attrs()...), 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("impossible Γ reported satisfiable")
	}
}

func TestMinimalSafeHiddenSets(t *testing.T) {
	mv := fig1View()
	minimal, err := mv.MinimalSafeHiddenSets(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) == 0 {
		t.Fatal("no minimal safe hidden sets")
	}
	all := relation.NewNameSet(mv.Attrs()...)
	for _, h := range minimal {
		safe, _ := mv.IsSafe(all.Minus(h), 4)
		if !safe {
			t.Errorf("minimal set %v not safe", h)
		}
		// Removing any single element must break safety.
		for a := range h {
			sub := h.Clone()
			delete(sub, a)
			safe, _ := mv.IsSafe(all.Minus(sub), 4)
			if safe {
				t.Errorf("set %v not minimal: %v also safe", h, sub)
			}
		}
	}
	// {a4,a5} must be among them (Example 3).
	found := false
	for _, h := range minimal {
		if h.Equal(relation.NewNameSet("a4", "a5")) {
			found = true
		}
	}
	if !found {
		t.Errorf("{a4,a5} missing from minimal sets: %v", minimal)
	}
}

// Proposition 1 (monotonicity): if a hidden set is safe, every superset is.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := module.Random("r", relation.Bools("x1", "x2"), relation.Bools("y1", "y2"), rng)
		mv := NewModuleView(m)
		attrs := mv.Attrs()
		all := relation.NewNameSet(attrs...)
		gamma := uint64(1 + rng.Intn(4))
		// Random hidden set.
		hidden := make(relation.NameSet)
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				hidden.Add(a)
			}
		}
		safe, err := mv.IsSafe(all.Minus(hidden), gamma)
		if err != nil {
			return false
		}
		if !safe {
			return true // nothing to check
		}
		// Add one more attribute.
		for _, a := range attrs {
			if !hidden.Has(a) {
				sup := hidden.Clone().Add(a)
				safe2, err := mv.IsSafe(all.Minus(sup), gamma)
				if err != nil || !safe2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: OutSize is always between 1 and the range size for total
// modules, and hiding everything yields exactly the number of distinct
// outputs times nothing — i.e. min equals distinct-output count times 1
// when outputs are visible... simplified: closed-form consistency between
// MinOutSize and per-input OutSize.
func TestQuickMinOutSizeIsMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := module.Random("r", relation.Bools("x1", "x2"), relation.Bools("y1", "y2"), rng)
		mv := NewModuleView(m)
		attrs := mv.Attrs()
		visible := make(relation.NameSet)
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				visible.Add(a)
			}
		}
		min, err := mv.MinOutSize(visible)
		if err != nil {
			return false
		}
		trueMin := uint64(1 << 62)
		ok := true
		relation.EachTuple(m.InputSchema(), func(x relation.Tuple) bool {
			n, err := mv.OutSize(visible, x)
			if err != nil {
				ok = false
				return false
			}
			if n < trueMin {
				trueMin = n
			}
			return true
		})
		return ok && min == trueMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllSafeVisibleSubsets(t *testing.T) {
	mv := fig1View()
	subsets, err := mv.AllSafeVisibleSubsets(4)
	if err != nil {
		t.Fatal(err)
	}
	// Every enumerated subset is safe and every safe subset is enumerated.
	count := 0
	attrs := mv.Attrs()
	for mask := 0; mask < 1<<len(attrs); mask++ {
		visible := make(relation.NameSet)
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				visible.Add(a)
			}
		}
		safe, _ := mv.IsSafe(visible, 4)
		if safe {
			count++
		}
	}
	if len(subsets) != count {
		t.Fatalf("enumerated %d safe subsets, exhaustive check says %d", len(subsets), count)
	}
}

func TestOracleSearchMatchesBruteForce(t *testing.T) {
	mv := fig1View()
	costs := Uniform(mv.Attrs()...)
	oracle := &CountingOracle{Inner: OracleFor(mv, 4)}
	hidden, cost, calls, err := MinCostSafeSubsetWithOracle(mv.Attrs(), costs, oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hidden == nil {
		t.Fatal("oracle search found nothing")
	}
	if cost != 2 {
		t.Fatalf("oracle search cost = %v, want 2", cost)
	}
	if calls <= 0 || calls != oracle.Calls() {
		t.Errorf("call accounting wrong: %d vs %d", calls, oracle.Calls())
	}
	// Budget below the optimum: nothing found, and the search exhausts the
	// candidate space within budget.
	oracle2 := &CountingOracle{Inner: OracleFor(mv, 4)}
	h2, _, _, err := MinCostSafeSubsetWithOracle(mv.Attrs(), costs, oracle2, 1)
	if err != nil || h2 != nil {
		t.Errorf("budget-1 search returned %v err=%v, want nil", h2, err)
	}
}
