package privacy

import (
	"sync"
	"testing"

	"secureview/internal/module"
	"secureview/internal/relation"
)

func TestCacheHitsAcrossUses(t *testing.T) {
	c := NewCache()
	mv := NewModuleView(module.Fig1M1())
	first, err := c.MinimalSafeHiddenSets(mv, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.MinimalSafeHiddenSets(mv, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatal("cached result differs")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d, want 1", c.Len())
	}
	// Matches the uncached computation.
	direct, err := mv.MinimalSafeHiddenSets(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(first) {
		t.Fatal("cache changed the result")
	}
}

func TestCacheDistinguishesGamma(t *testing.T) {
	c := NewCache()
	mv := NewModuleView(module.Fig1M1())
	if _, err := c.MinimalSafeHiddenSets(mv, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MinimalSafeHiddenSets(mv, 4); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (different Γ)", c.Len())
	}
}

func TestCacheDistinguishesFunctionality(t *testing.T) {
	c := NewCache()
	a := NewModuleView(module.And("g", []string{"x", "y"}, "z"))
	b := NewModuleView(module.Or("g", []string{"x", "y"}, "z"))
	if _, err := c.MinimalSafeHiddenSets(a, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MinimalSafeHiddenSets(b, 2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (different functions)", c.Len())
	}
	// Same function under a second view object hits.
	a2 := NewModuleView(module.And("g", []string{"x", "y"}, "z"))
	if _, err := c.MinimalSafeHiddenSets(a2, 2); err != nil {
		t.Fatal(err)
	}
	hits, _ := c.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestCacheDistinguishesAttributeNames(t *testing.T) {
	// Safe subsets are name sets, so renamed attributes must not share an
	// entry.
	c := NewCache()
	a := NewModuleView(module.And("g", []string{"x", "y"}, "z"))
	b := NewModuleView(module.And("g", []string{"p", "q"}, "r"))
	if _, err := c.MinimalSafeHiddenSets(a, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MinimalSafeHiddenSets(b, 2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (renamed attributes)", c.Len())
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	c := NewCache()
	mv := NewModuleView(module.Fig1M1())
	var wg sync.WaitGroup
	results := make([][]relation.NameSet, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sets, err := c.MinimalSafeHiddenSets(mv, 2)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = sets
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatal("concurrent results differ")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d, want 1", c.Len())
	}
}
