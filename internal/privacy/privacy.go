// Package privacy implements Γ-standalone-privacy for individual modules
// (Davidson et al., PODS 2011, section 3 and appendix A).
//
// The central notion is Definition 2 of the paper: a module m with relation
// R is Γ-standalone-private w.r.t. a set V of visible attributes if, for
// every input x occurring in R, the possible worlds Worlds(R,V) admit at
// least Γ distinct outputs for x. The package provides
//
//   - the exact closed-form safety test of Lemma 4 / Algorithm 2 (group rows
//     by visible inputs, count distinct visible outputs, multiply by the
//     hidden-output domain volume),
//   - OUT-set computation for individual inputs,
//   - brute-force minimum-cost safe-subset search (the standalone
//     Secure-View problem) and enumeration of all minimal safe hidden sets,
//   - the Safe-View oracle and data-supplier abstractions with call
//     counting, used by the communication-complexity experiments, and
//   - the adversarial gadgets from the proofs of Theorems 1, 2 and 3.
package privacy

import (
	"fmt"
	"math"

	"secureview/internal/module"
	"secureview/internal/oracle"
	"secureview/internal/relation"
)

// ModuleView bundles what the standalone definitions need: the module's
// relation (possibly partial, i.e. only executed inputs), and which of its
// attributes are inputs vs outputs.
type ModuleView struct {
	Rel     *relation.Relation
	Inputs  []string
	Outputs []string
}

// NewModuleView materializes a module's full relation. For partial views use
// the ModuleView literal with RelationOver.
func NewModuleView(m *module.Module) ModuleView {
	return ModuleView{Rel: m.Relation(), Inputs: m.InputNames(), Outputs: m.OutputNames()}
}

// Compile lowers the module view into the integer-coded oracle of
// internal/oracle: rows become uint64 input/output codes, and each safety
// test becomes a sort-and-scan over packed keys with zero steady-state
// allocation. The compiled oracle is immutable and safe to share across the
// search engine's worker pool. Compilation fails (and callers fall back to
// the interpreted path) when the domain products overflow uint64 or the
// module has more than oracle.MaxAttrs attributes.
func (mv ModuleView) Compile() (*oracle.Compiled, error) {
	return oracle.Compile(mv.Rel, mv.Inputs, mv.Outputs)
}

// HiddenOutputVolume returns ∏_{a ∈ O\V} |∆a|, the number of ways to extend
// a visible output assignment to the hidden output attributes. The bool is
// false on overflow (treated as "huge" by callers).
func (mv ModuleView) HiddenOutputVolume(visible relation.NameSet) (uint64, bool) {
	var hidden []string
	for _, o := range mv.Outputs {
		if !visible.Has(o) {
			hidden = append(hidden, o)
		}
	}
	return mv.Rel.Schema().DomainProduct(hidden)
}

// MinOutSize returns min_x |OUT_{x,m}| over all inputs x ∈ π_I(R), w.r.t.
// the visible attribute set, using the closed form of Lemma 4:
//
//	|OUT_x| = (# distinct visible-output tuples among rows that agree with
//	           x on the visible inputs) × ∏_{a ∈ O\V} |∆a|.
//
// The returned value saturates at math.MaxUint64 on overflow. An empty
// relation yields 0.
func (mv ModuleView) MinOutSize(visible relation.NameSet) (uint64, error) {
	if mv.Rel.Len() == 0 {
		return 0, nil
	}
	visIn := visible.FilterSorted(mv.Inputs)
	visOut := visible.FilterSorted(mv.Outputs)
	vol, ok := mv.HiddenOutputVolume(visible)
	if !ok {
		vol = math.MaxUint64
	}
	groups, err := mv.Rel.GroupBy(visIn)
	if err != nil {
		return 0, err
	}
	outCols, err := mv.Rel.Schema().Columns(visOut)
	if err != nil {
		return 0, err
	}
	min := uint64(math.MaxUint64)
	for _, g := range groups {
		distinct := countDistinctOn(mv.Rel.Schema(), g, outCols)
		size := satMul(uint64(distinct), vol)
		if size < min {
			min = size
		}
	}
	return min, nil
}

// OutSize returns |OUT_{x,m}| for one input tuple x (aligned with Inputs),
// w.r.t. the visible attribute set. x must occur in π_I(R).
func (mv ModuleView) OutSize(visible relation.NameSet, x relation.Tuple) (uint64, error) {
	if len(x) != len(mv.Inputs) {
		return 0, fmt.Errorf("privacy: input arity %d, want %d", len(x), len(mv.Inputs))
	}
	inCols, err := mv.Rel.Schema().Columns(mv.Inputs)
	if err != nil {
		return 0, err
	}
	visIn := visible.FilterSorted(mv.Inputs)
	visInCols, err := mv.Rel.Schema().Columns(visIn)
	if err != nil {
		return 0, err
	}
	visOut := visible.FilterSorted(mv.Outputs)
	visOutCols, err := mv.Rel.Schema().Columns(visOut)
	if err != nil {
		return 0, err
	}
	// Locate x's visible input part via any row with input x.
	var ref relation.Tuple
	for _, row := range mv.Rel.Rows() {
		match := true
		for i, c := range inCols {
			if row[c] != x[i] {
				match = false
				break
			}
		}
		if match {
			ref = row
			break
		}
	}
	if ref == nil {
		return 0, fmt.Errorf("privacy: input %v not in relation", x)
	}
	group := mv.Rel.Select(func(row relation.Tuple) bool {
		for _, c := range visInCols {
			if row[c] != ref[c] {
				return false
			}
		}
		return true
	})
	distinct := countDistinctOn(mv.Rel.Schema(), group.Rows(), visOutCols)
	vol, ok := mv.HiddenOutputVolume(visible)
	if !ok {
		vol = math.MaxUint64
	}
	return satMul(uint64(distinct), vol), nil
}

// OutSet enumerates OUT_{x,m} explicitly: every output tuple y (aligned with
// Outputs) that some possible world assigns to x. Only suitable for small
// hidden-output domains; used by tests and the Figure 2 experiment.
func (mv ModuleView) OutSet(visible relation.NameSet, x relation.Tuple) ([]relation.Tuple, error) {
	inCols, err := mv.Rel.Schema().Columns(mv.Inputs)
	if err != nil {
		return nil, err
	}
	var ref relation.Tuple
	for _, row := range mv.Rel.Rows() {
		match := true
		for i, c := range inCols {
			if row[c] != x[i] {
				match = false
				break
			}
		}
		if match {
			ref = row
			break
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("privacy: input %v not in relation", x)
	}
	visIn := visible.FilterSorted(mv.Inputs)
	visInCols, err := mv.Rel.Schema().Columns(visIn)
	if err != nil {
		return nil, err
	}
	outCols, err := mv.Rel.Schema().Columns(mv.Outputs)
	if err != nil {
		return nil, err
	}
	outSchema, err := mv.Rel.Schema().Project(mv.Outputs)
	if err != nil {
		return nil, err
	}
	// Collect visible-output patterns from the group, then expand every
	// hidden output coordinate over its full domain.
	group := mv.Rel.Select(func(row relation.Tuple) bool {
		for _, c := range visInCols {
			if row[c] != ref[c] {
				return false
			}
		}
		return true
	})
	seen := make(map[uint64]relation.Tuple)
	for _, row := range group.Rows() {
		base := make(relation.Tuple, len(outCols))
		for i, c := range outCols {
			base[i] = row[c]
		}
		expandHidden(outSchema, mv.Outputs, visible, base, 0, seen)
	}
	out := make([]relation.Tuple, 0, len(seen))
	relation.EachTuple(outSchema, func(t relation.Tuple) bool {
		if y, ok := seen[relation.Encode(outSchema, t)]; ok {
			out = append(out, y)
		}
		return true
	})
	return out, nil
}

func expandHidden(outSchema *relation.Schema, outputs []string, visible relation.NameSet,
	cur relation.Tuple, i int, seen map[uint64]relation.Tuple) {
	if i == len(outputs) {
		seen[relation.Encode(outSchema, cur)] = cur.Clone()
		return
	}
	if visible.Has(outputs[i]) {
		expandHidden(outSchema, outputs, visible, cur, i+1, seen)
		return
	}
	orig := cur[i]
	for v := 0; v < outSchema.Attr(i).Domain; v++ {
		cur[i] = v
		expandHidden(outSchema, outputs, visible, cur, i+1, seen)
	}
	cur[i] = orig
}

// IsSafe reports whether the visible set V is safe for the module and
// privacy requirement Γ (Definition 2): min_x |OUT_x| >= Γ.
func (mv ModuleView) IsSafe(visible relation.NameSet, gamma uint64) (bool, error) {
	min, err := mv.MinOutSize(visible)
	if err != nil {
		return false, err
	}
	return min >= gamma, nil
}

// countDistinctOn counts distinct projections of rows onto cols using packed
// uint64 mixed-radix codes as dedup keys (relation.EncodeCols) instead of
// concatenated strings; when the columns' domain product overflows uint64 it
// falls back to a string encoding.
func countDistinctOn(s *relation.Schema, rows []relation.Tuple, cols []int) int {
	if len(cols) == 0 {
		if len(rows) == 0 {
			return 0
		}
		return 1
	}
	prod := uint64(1)
	for _, c := range cols {
		d := uint64(s.Attr(c).Domain)
		if d != 0 && prod > math.MaxUint64/d {
			return countDistinctOnStrings(rows, cols)
		}
		prod *= d
	}
	seen := make(map[uint64]struct{}, len(rows))
	for _, row := range rows {
		seen[relation.EncodeCols(s, row, cols)] = struct{}{}
	}
	return len(seen)
}

// countDistinctOnStrings is the pre-compiled-oracle fallback for domain
// products beyond uint64.
func countDistinctOnStrings(rows []relation.Tuple, cols []int) int {
	seen := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		k := ""
		for _, c := range cols {
			k += fmt.Sprintf("%d,", row[c])
		}
		seen[k] = struct{}{}
	}
	return len(seen)
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}
