package privacy

import (
	"fmt"
	"sort"

	"secureview/internal/oracle"
	"secureview/internal/relation"
	"secureview/internal/search"
)

// Costs assigns a hiding penalty to each attribute. Missing attributes are
// treated as free (cost 0).
type Costs map[string]float64

// Of returns the cost of one attribute.
func (c Costs) Of(name string) float64 { return c[name] }

// Sum returns the total cost of a hidden set. The summation runs over the
// set's names in sorted order so the float64 result is bit-identical across
// runs: map iteration order would otherwise reorder the additions, and float
// addition is not associative, which used to leave heuristic solvers off by
// an ulp between identical requests.
func (c Costs) Sum(hidden relation.NameSet) float64 {
	names := make([]string, 0, len(hidden))
	for n := range hidden {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0.0
	for _, n := range names {
		total += c[n]
	}
	return total
}

// Uniform returns unit costs for the given attributes.
func Uniform(names ...string) Costs {
	c := make(Costs, len(names))
	for _, n := range names {
		c[n] = 1
	}
	return c
}

// Attrs returns the module view's attributes, inputs then outputs.
func (mv ModuleView) Attrs() []string {
	return append(append([]string{}, mv.Inputs...), mv.Outputs...)
}

// SearchResult is the outcome of a standalone Secure-View search.
type SearchResult struct {
	// Hidden is the minimum-cost hidden set V̄; Visible is its complement.
	Hidden  relation.NameSet
	Visible relation.NameSet
	// Cost is c(V̄).
	Cost float64
	// Found is false when no subset (not even hiding everything) is safe,
	// which happens when Γ exceeds the module's output-range size.
	Found bool
	// Checked counts safety tests actually performed; Pruned counts the
	// candidate subsets eliminated without a test (best-cost bound,
	// Proposition 1 monotonicity, symmetry breaking, or early exit once the
	// optimum is pinned). Checked + Pruned always equals 2^k.
	Checked int
	Pruned  int
	// OraclePasses counts oracle invocations: with a batch oracle a single
	// pass may answer many candidates, so OraclePasses <= Checked. BatchSize
	// is the largest batch answered in one pass (1 without batching).
	OraclePasses int
	BatchSize    int
}

// searchSpace builds the mask universe for the module view's attributes.
func (mv ModuleView) searchSpace(costs Costs) (*search.Space, error) {
	return search.NewSpace(mv.Attrs(), costs.Of)
}

// maskOracles adapts the Lemma 4 safety test to the engine. The compiled
// integer-coded oracle is preferred: it is built once per search, shared
// read-only across the engine's worker pool, and answers each mask with a
// stamped counting pass over packed row codes — no name sets, no relation
// scans, no per-call allocation. The search space is built over mv.Attrs()
// (inputs then outputs), the exact bit order the compiled oracle uses, so
// engine masks pass through by integer conversion. The compiled table is
// returned alongside so callers can wire its batch interface and symmetry
// classes into the engine options; modules whose domain products overflow
// uint64 fall back to the interpreted Lemma 4 test (nil table).
func (mv ModuleView) maskOracles(sp *search.Space, gamma uint64) (search.Oracle, *oracle.Compiled) {
	if c, err := mv.Compile(); err == nil {
		return func(visible search.Mask) (bool, error) {
			return c.IsSafe(oracle.Mask(visible), gamma), nil
		}, c
	}
	return func(visible search.Mask) (bool, error) {
		return mv.IsSafe(sp.NameSet(visible), gamma)
	}, nil
}

// maskOracle is maskOracles without the compiled handle, for the
// enumeration entry points that cannot use batching or symmetry.
func (mv ModuleView) maskOracle(sp *search.Space, gamma uint64) search.Oracle {
	orc, _ := mv.maskOracles(sp, gamma)
	return orc
}

// CompiledSearchOptions wires a compiled oracle into engine options: the
// batch interface (one counting pass answers a whole chunk of sibling
// candidates) and the equal-cost oracle equivalence classes as symmetry-
// breaking input. Fields the caller already set are left alone. The gamma
// must match the one the per-mask oracle uses.
func CompiledSearchOptions(c *oracle.Compiled, costs Costs, gamma uint64, opts search.Options) search.Options {
	if opts.Batch == nil {
		opts.Batch = func(visible []search.Mask) ([]bool, error) {
			ms := make([]oracle.Mask, len(visible))
			for i, v := range visible {
				ms[i] = oracle.Mask(v)
			}
			return c.IsSafeBatch(ms, gamma), nil
		}
	}
	if opts.Symmetry == nil {
		opts.Symmetry = EqualCostClasses(c.EquivClasses(), c.Attrs(), costs)
	}
	return opts
}

// EqualCostClasses restricts attribute equivalence classes (indices into
// attrs) to members sharing one hiding cost — the extra condition under
// which the engine's symmetry breaking preserves the (cost, lex) optimum
// exactly. Subclasses with fewer than two members are dropped.
func EqualCostClasses(classes [][]int, attrs []string, costs Costs) [][]int {
	var out [][]int
	for _, cl := range classes {
		var byCost []struct {
			cost    float64
			members []int
		}
		for _, i := range cl {
			c := costs.Of(attrs[i])
			found := false
			for bi := range byCost {
				if byCost[bi].cost == c {
					byCost[bi].members = append(byCost[bi].members, i)
					found = true
					break
				}
			}
			if !found {
				byCost = append(byCost, struct {
					cost    float64
					members []int
				}{c, []int{i}})
			}
		}
		for _, g := range byCost {
			if len(g.members) >= 2 {
				out = append(out, g.members)
			}
		}
	}
	return out
}

// MinCostSafeSubset solves the standalone Secure-View problem over all 2^k
// attribute subsets (the paper proves 2^Ω(k) safety tests are required in
// the worst case, Theorem 3; k is small in practice, section 3.2) using the
// pruned parallel engine of internal/search. Ties on cost are broken toward
// the hidden set that is lexicographically smallest as a sorted name
// sequence, so the result is deterministic.
func (mv ModuleView) MinCostSafeSubset(costs Costs, gamma uint64) (SearchResult, error) {
	return mv.MinCostSafeSubsetOpts(costs, gamma, search.Options{})
}

// MinCostSafeSubsetOpts is MinCostSafeSubset with engine options (worker
// parallelism).
func (mv ModuleView) MinCostSafeSubsetOpts(costs Costs, gamma uint64, opts search.Options) (SearchResult, error) {
	attrs := mv.Attrs()
	if len(attrs) > search.MaxAttrs {
		return SearchResult{}, fmt.Errorf("privacy: %d attributes too many for brute force", len(attrs))
	}
	sp, err := mv.searchSpace(costs)
	if err != nil {
		return SearchResult{}, fmt.Errorf("privacy: %w", err)
	}
	orc, comp := mv.maskOracles(sp, gamma)
	if comp != nil {
		opts = CompiledSearchOptions(comp, costs, gamma, opts)
	}
	res, err := sp.MinCost(orc, opts)
	if err != nil {
		return SearchResult{}, err
	}
	out := SearchResult{
		Found:        res.Found,
		Checked:      res.Stats.Checked,
		Pruned:       res.Stats.Pruned,
		OraclePasses: res.Stats.OraclePasses,
		BatchSize:    res.Stats.BatchSize,
	}
	if res.Found {
		out.Hidden = sp.NameSet(res.Hidden)
		out.Visible = sp.NameSet(sp.All() &^ res.Hidden)
		out.Cost = res.Cost
	}
	return out, nil
}

// AllSafeVisibleSubsets enumerates every visible subset V ⊆ I∪O that is
// safe for Γ, in the engine's deterministic order. Exponential output;
// intended for constraint-list derivation and tests.
func (mv ModuleView) AllSafeVisibleSubsets(gamma uint64) ([]relation.NameSet, error) {
	return mv.AllSafeVisibleSubsetsOpts(gamma, search.Options{})
}

// AllSafeVisibleSubsetsOpts is AllSafeVisibleSubsets with engine options.
func (mv ModuleView) AllSafeVisibleSubsetsOpts(gamma uint64, opts search.Options) ([]relation.NameSet, error) {
	attrs := mv.Attrs()
	if len(attrs) > search.LevelMax {
		return nil, fmt.Errorf("privacy: %d attributes too many to enumerate", len(attrs))
	}
	sp, err := mv.searchSpace(nil)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	masks, _, err := sp.AllSafeVisible(mv.maskOracle(sp, gamma), opts)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	out := make([]relation.NameSet, len(masks))
	for i, m := range masks {
		out[i] = sp.NameSet(m)
	}
	return out, nil
}

// MinimalSafeHiddenSets enumerates the inclusion-minimal hidden sets V̄ such
// that V = (I∪O)\V̄ is safe for Γ. By Proposition 1 safety is monotone in
// the hidden set, so these minimal sets generate all safe solutions and
// serve as the per-module requirement lists Li of the workflow Secure-View
// problem with set constraints (section 4.2). The engine exploits the same
// monotonicity to skip every dominated subset without a safety test.
func (mv ModuleView) MinimalSafeHiddenSets(gamma uint64) ([]relation.NameSet, error) {
	return mv.MinimalSafeHiddenSetsOpts(gamma, search.Options{})
}

// MinimalSafeHiddenSetsOpts is MinimalSafeHiddenSets with engine options.
func (mv ModuleView) MinimalSafeHiddenSetsOpts(gamma uint64, opts search.Options) ([]relation.NameSet, error) {
	attrs := mv.Attrs()
	if len(attrs) > search.LevelMax {
		return nil, fmt.Errorf("privacy: %d attributes too many to enumerate", len(attrs))
	}
	sp, err := mv.searchSpace(nil)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	masks, _, err := sp.MinimalSafeHidden(mv.maskOracle(sp, gamma), opts)
	if err != nil {
		return nil, fmt.Errorf("privacy: %w", err)
	}
	out := make([]relation.NameSet, len(masks))
	for i, m := range masks {
		out[i] = sp.NameSet(m)
	}
	return out, nil
}

// SafeViewOracle answers safety queries for a fixed module and Γ (the
// oracle of Theorem 3).
type SafeViewOracle interface {
	// IsSafe reports whether the visible set is safe.
	IsSafe(visible relation.NameSet) (bool, error)
}

// relationOracle implements SafeViewOracle on a concrete module view.
type relationOracle struct {
	mv    ModuleView
	gamma uint64
}

// OracleFor returns a Safe-View oracle backed by the module view. The view
// is compiled to the integer-coded oracle when possible (one compilation,
// answering every later query with integer lookups); views whose domain
// products overflow uint64 get the interpreted oracle instead. Both are safe
// for concurrent use under the parallel engine.
func OracleFor(mv ModuleView, gamma uint64) SafeViewOracle {
	if c, err := mv.Compile(); err == nil {
		return compiledOracle{c: c, gamma: gamma}
	}
	return relationOracle{mv: mv, gamma: gamma}
}

func (o relationOracle) IsSafe(visible relation.NameSet) (bool, error) {
	return o.mv.IsSafe(visible, o.gamma)
}

// compiledOracle answers Safe-View queries from a compiled module view.
type compiledOracle struct {
	c     *oracle.Compiled
	gamma uint64
}

func (o compiledOracle) IsSafe(visible relation.NameSet) (bool, error) {
	return o.c.IsSafe(o.c.MaskOf(visible), o.gamma), nil
}

// BatchSafeViewOracle is a SafeViewOracle that can answer many visible sets
// in one pass. The engine detects it and amortizes per-row decode work
// across sibling candidates.
type BatchSafeViewOracle interface {
	SafeViewOracle
	// IsSafeBatch answers safety for each visible set, in order.
	IsSafeBatch(visible []relation.NameSet) ([]bool, error)
}

func (o compiledOracle) IsSafeBatch(visible []relation.NameSet) ([]bool, error) {
	ms := make([]oracle.Mask, len(visible))
	for i, v := range visible {
		ms[i] = o.c.MaskOf(v)
	}
	return o.c.IsSafeBatch(ms, o.gamma), nil
}

// EngineMinCostWithOracle runs the pruned parallel engine against an
// arbitrary Safe-View oracle. The oracle MUST be monotone (Proposition 1)
// and safe for concurrent use — MemoOracle and CountingOracle add their own
// bookkeeping safely but still delegate concurrently, so they do NOT make a
// non-thread-safe inner oracle safe. For adversarial, non-monotone oracles
// use MinCostSafeSubsetWithOracle, which assumes nothing. The engine asks
// about each visible set at most once per call, so to amortize answers
// ACROSS calls, pass the same MemoOracle to each.
func EngineMinCostWithOracle(attrs []string, costs Costs, oracle SafeViewOracle, opts search.Options) (SearchResult, error) {
	if len(attrs) > search.MaxAttrs {
		return SearchResult{}, fmt.Errorf("privacy: %d attributes too many", len(attrs))
	}
	sp, err := search.NewSpace(attrs, costs.Of)
	if err != nil {
		return SearchResult{}, fmt.Errorf("privacy: %w", err)
	}
	if bo, ok := oracle.(BatchSafeViewOracle); ok && opts.Batch == nil {
		opts.Batch = func(visible []search.Mask) ([]bool, error) {
			sets := make([]relation.NameSet, len(visible))
			for i, v := range visible {
				sets[i] = sp.NameSet(v)
			}
			return bo.IsSafeBatch(sets)
		}
	}
	res, err := sp.MinCost(func(visible search.Mask) (bool, error) {
		return oracle.IsSafe(sp.NameSet(visible))
	}, opts)
	if err != nil {
		return SearchResult{}, err
	}
	out := SearchResult{
		Found:        res.Found,
		Checked:      res.Stats.Checked,
		Pruned:       res.Stats.Pruned,
		OraclePasses: res.Stats.OraclePasses,
		BatchSize:    res.Stats.BatchSize,
	}
	if res.Found {
		out.Hidden = sp.NameSet(res.Hidden)
		out.Visible = sp.NameSet(sp.All() &^ res.Hidden)
		out.Cost = res.Cost
	}
	return out, nil
}

// MinCostSafeSubsetWithOracle solves the standalone Secure-View decision
// problem using only oracle calls: it asks the oracle about every subset in
// increasing cost order until it finds a safe one of cost <= budget. It
// returns the hidden set found (nil if none), its cost, and the number of
// oracle calls. This is the generic 2^k-call upper bound of section 3.2; it
// deliberately assumes NOTHING about the oracle (no monotonicity), because
// the Theorem 3 adversary answers inconsistently with any fixed module.
func MinCostSafeSubsetWithOracle(attrs []string, costs Costs, oracle *CountingOracle, budget float64) (relation.NameSet, float64, int, error) {
	k := len(attrs)
	if k > 24 {
		return nil, 0, 0, fmt.Errorf("privacy: %d attributes too many", k)
	}
	type cand struct {
		mask int
		cost float64
	}
	cands := make([]cand, 0, 1<<k)
	for mask := 0; mask < 1<<k; mask++ {
		cost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				cost += costs.Of(a)
			}
		}
		if cost <= budget {
			cands = append(cands, cand{mask, cost})
		}
	}
	// Sort by cost ascending (ties on mask for determinism).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].mask < cands[j].mask
	})
	start := oracle.Calls()
	all := relation.NewNameSet(attrs...)
	for _, c := range cands {
		hidden := make(relation.NameSet)
		for i, a := range attrs {
			if c.mask&(1<<i) != 0 {
				hidden.Add(a)
			}
		}
		safe, err := oracle.IsSafe(all.Minus(hidden))
		if err != nil {
			return nil, 0, oracle.Calls() - start, err
		}
		if safe {
			return hidden, c.cost, oracle.Calls() - start, nil
		}
	}
	return nil, 0, oracle.Calls() - start, nil
}
