package privacy

import (
	"fmt"
	"math"
	"sort"

	"secureview/internal/relation"
)

// Costs assigns a hiding penalty to each attribute. Missing attributes are
// treated as free (cost 0).
type Costs map[string]float64

// Of returns the cost of one attribute.
func (c Costs) Of(name string) float64 { return c[name] }

// Sum returns the total cost of a hidden set.
func (c Costs) Sum(hidden relation.NameSet) float64 {
	total := 0.0
	for n := range hidden {
		total += c[n]
	}
	return total
}

// Uniform returns unit costs for the given attributes.
func Uniform(names ...string) Costs {
	c := make(Costs, len(names))
	for _, n := range names {
		c[n] = 1
	}
	return c
}

// Attrs returns the module view's attributes, inputs then outputs.
func (mv ModuleView) Attrs() []string {
	return append(append([]string{}, mv.Inputs...), mv.Outputs...)
}

// SearchResult is the outcome of a standalone Secure-View search.
type SearchResult struct {
	// Hidden is the minimum-cost hidden set V̄; Visible is its complement.
	Hidden  relation.NameSet
	Visible relation.NameSet
	// Cost is c(V̄).
	Cost float64
	// Found is false when no subset (not even hiding everything) is safe,
	// which happens when Γ exceeds the module's output-range size.
	Found bool
	// Checked counts safety tests performed (2^k for the brute force).
	Checked int
}

// MinCostSafeSubset solves the standalone Secure-View problem by brute
// force over all 2^k attribute subsets (the paper proves 2^Ω(k) is required
// in the worst case, Theorem 3; k is small in practice, section 3.2).
func (mv ModuleView) MinCostSafeSubset(costs Costs, gamma uint64) (SearchResult, error) {
	attrs := mv.Attrs()
	k := len(attrs)
	if k > 24 {
		return SearchResult{}, fmt.Errorf("privacy: %d attributes too many for brute force", k)
	}
	best := SearchResult{Cost: math.Inf(1)}
	for mask := 0; mask < 1<<k; mask++ {
		hidden := make(relation.NameSet)
		cost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				hidden.Add(a)
				cost += costs.Of(a)
			}
		}
		if cost >= best.Cost {
			best.Checked++
			continue
		}
		visible := relation.NewNameSet(attrs...).Minus(hidden)
		safe, err := mv.IsSafe(visible, gamma)
		if err != nil {
			return SearchResult{}, err
		}
		best.Checked++
		if safe {
			best.Hidden = hidden
			best.Visible = visible
			best.Cost = cost
			best.Found = true
		}
	}
	if !best.Found {
		best.Cost = 0
	}
	return best, nil
}

// AllSafeVisibleSubsets enumerates every visible subset V ⊆ I∪O that is
// safe for Γ. Exponential in k; intended for constraint-list derivation and
// tests.
func (mv ModuleView) AllSafeVisibleSubsets(gamma uint64) ([]relation.NameSet, error) {
	attrs := mv.Attrs()
	k := len(attrs)
	if k > 20 {
		return nil, fmt.Errorf("privacy: %d attributes too many to enumerate", k)
	}
	var out []relation.NameSet
	for mask := 0; mask < 1<<k; mask++ {
		visible := make(relation.NameSet)
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				visible.Add(a)
			}
		}
		safe, err := mv.IsSafe(visible, gamma)
		if err != nil {
			return nil, err
		}
		if safe {
			out = append(out, visible)
		}
	}
	return out, nil
}

// MinimalSafeHiddenSets enumerates the inclusion-minimal hidden sets V̄ such
// that V = (I∪O)\V̄ is safe for Γ. By Proposition 1 safety is monotone in
// the hidden set, so these minimal sets generate all safe solutions and
// serve as the per-module requirement lists Li of the workflow Secure-View
// problem with set constraints (section 4.2).
func (mv ModuleView) MinimalSafeHiddenSets(gamma uint64) ([]relation.NameSet, error) {
	attrs := mv.Attrs()
	k := len(attrs)
	if k > 20 {
		return nil, fmt.Errorf("privacy: %d attributes too many to enumerate", k)
	}
	all := relation.NewNameSet(attrs...)
	// Order masks by popcount so minimality reduces to "no previously
	// accepted set is a subset".
	masksBySize := make([][]int, k+1)
	for mask := 0; mask < 1<<k; mask++ {
		pc := popcount(mask)
		masksBySize[pc] = append(masksBySize[pc], mask)
	}
	var minimal []relation.NameSet
	for size := 0; size <= k; size++ {
		for _, mask := range masksBySize[size] {
			hidden := make(relation.NameSet)
			for i, a := range attrs {
				if mask&(1<<i) != 0 {
					hidden.Add(a)
				}
			}
			dominated := false
			for _, m := range minimal {
				if m.SubsetOf(hidden) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			safe, err := mv.IsSafe(all.Minus(hidden), gamma)
			if err != nil {
				return nil, err
			}
			if safe {
				minimal = append(minimal, hidden)
			}
		}
	}
	return minimal, nil
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// SafeViewOracle answers safety queries for a fixed module and Γ (the
// oracle of Theorem 3).
type SafeViewOracle interface {
	// IsSafe reports whether the visible set is safe.
	IsSafe(visible relation.NameSet) (bool, error)
}

// CountingOracle wraps a SafeViewOracle and counts calls.
type CountingOracle struct {
	Inner SafeViewOracle
	calls int
}

// IsSafe delegates and increments the call counter.
func (c *CountingOracle) IsSafe(visible relation.NameSet) (bool, error) {
	c.calls++
	return c.Inner.IsSafe(visible)
}

// Calls returns the number of oracle queries made so far.
func (c *CountingOracle) Calls() int { return c.calls }

// relationOracle implements SafeViewOracle on a concrete module view.
type relationOracle struct {
	mv    ModuleView
	gamma uint64
}

// OracleFor returns a Safe-View oracle backed by the module view.
func OracleFor(mv ModuleView, gamma uint64) SafeViewOracle {
	return relationOracle{mv: mv, gamma: gamma}
}

func (o relationOracle) IsSafe(visible relation.NameSet) (bool, error) {
	return o.mv.IsSafe(visible, o.gamma)
}

// MinCostSafeSubsetWithOracle solves the standalone Secure-View decision
// problem using only oracle calls: it asks the oracle about every subset in
// increasing cost order until it finds a safe one of cost <= budget. It
// returns the hidden set found (nil if none), its cost, and the number of
// oracle calls. This is the generic 2^k-call upper bound of section 3.2.
func MinCostSafeSubsetWithOracle(attrs []string, costs Costs, oracle *CountingOracle, budget float64) (relation.NameSet, float64, int, error) {
	k := len(attrs)
	if k > 24 {
		return nil, 0, 0, fmt.Errorf("privacy: %d attributes too many", k)
	}
	type cand struct {
		mask int
		cost float64
	}
	cands := make([]cand, 0, 1<<k)
	for mask := 0; mask < 1<<k; mask++ {
		cost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				cost += costs.Of(a)
			}
		}
		if cost <= budget {
			cands = append(cands, cand{mask, cost})
		}
	}
	// Sort by cost ascending (ties on mask for determinism).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].mask < cands[j].mask
	})
	start := oracle.Calls()
	all := relation.NewNameSet(attrs...)
	for _, c := range cands {
		hidden := make(relation.NameSet)
		for i, a := range attrs {
			if c.mask&(1<<i) != 0 {
				hidden.Add(a)
			}
		}
		safe, err := oracle.IsSafe(all.Minus(hidden))
		if err != nil {
			return nil, 0, oracle.Calls() - start, err
		}
		if safe {
			return hidden, c.cost, oracle.Calls() - start, nil
		}
	}
	return nil, 0, oracle.Calls() - start, nil
}
