package privacy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/relation"
	"secureview/internal/sat"
)

func membership(n int, members ...int) []bool {
	s := make([]bool, n)
	for _, i := range members {
		s[i] = true
	}
	return s
}

// Theorem 1 semantics: the disjointness gadget's view is safe for Γ=2 iff
// A ∩ B ≠ ∅.
func TestDisjointnessGadgetSafety(t *testing.T) {
	cases := []struct {
		name string
		a, b []bool
		safe bool
	}{
		{"intersecting", membership(6, 0, 2, 4), membership(6, 2, 5), true},
		{"disjoint", membership(6, 0, 1), membership(6, 3, 4), false},
		{"empty sets", membership(6), membership(6), false},
		{"full overlap", membership(4, 0, 1, 2, 3), membership(4, 0, 1, 2, 3), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, inputs, visible := DisjointnessGadget(tc.a, tc.b)
			rel, err := m.RelationOver(inputs)
			if err != nil {
				t.Fatal(err)
			}
			mv := ModuleView{Rel: rel, Inputs: m.InputNames(), Outputs: m.OutputNames()}
			safe, err := mv.IsSafe(visible, 2)
			if err != nil {
				t.Fatal(err)
			}
			if safe != tc.safe {
				t.Errorf("safe = %v, want %v", safe, tc.safe)
			}
		})
	}
}

// Property: gadget safety always equals non-disjointness.
func TestQuickDisjointnessEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		a := make([]bool, n)
		b := make([]bool, n)
		intersect := false
		for i := range a {
			a[i] = rng.Intn(2) == 0
			b[i] = rng.Intn(2) == 0
			if a[i] && b[i] {
				intersect = true
			}
		}
		m, inputs, visible := DisjointnessGadget(a, b)
		rel, err := m.RelationOver(inputs)
		if err != nil {
			return false
		}
		mv := ModuleView{Rel: rel, Inputs: m.InputNames(), Outputs: m.OutputNames()}
		safe, err := mv.IsSafe(visible, 2)
		return err == nil && safe == intersect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorem 1 communication behaviour: an unsafe (disjoint) instance forces
// the streaming checker to read all N+1 rows; a safe instance with an early
// intersection element exits early.
func TestStreamingSafetyCallCounts(t *testing.T) {
	n := 50
	// Disjoint: must read everything.
	m, inputs, visible := DisjointnessGadget(membership(n, 0, 1, 2), membership(n, 10, 11))
	d := NewDataSupplier(m)
	safe, calls, err := StreamingSafety(d, inputs, visible, 2)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Error("disjoint instance reported safe")
	}
	if calls != n+1 {
		t.Errorf("disjoint instance read %d rows, want %d", calls, n+1)
	}
	// Intersection at position 3: both outputs seen by row 4 at the latest
	// (rows 0..2 give y=0 or 1 depending on membership; row 3 gives y=1).
	m2, inputs2, visible2 := DisjointnessGadget(membership(n, 3), membership(n, 3))
	d2 := NewDataSupplier(m2)
	safe2, calls2, err := StreamingSafety(d2, inputs2, visible2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !safe2 {
		t.Error("intersecting instance reported unsafe")
	}
	if calls2 > 5 {
		t.Errorf("early exit failed: %d calls", calls2)
	}
}

// Theorem 2 semantics: the UNSAT gadget's view is safe for Γ=2 iff the
// formula is unsatisfiable.
func TestUnsatGadget(t *testing.T) {
	t.Run("contradiction is safe", func(t *testing.T) {
		m, visible := UnsatGadget(sat.Contradiction(4))
		mv := NewModuleView(m)
		safe, err := mv.IsSafe(visible, 2)
		if err != nil || !safe {
			t.Fatalf("safe=%v err=%v, want true", safe, err)
		}
	})
	t.Run("tautology is unsafe", func(t *testing.T) {
		m, visible := UnsatGadget(sat.Tautology(4))
		mv := NewModuleView(m)
		safe, err := mv.IsSafe(visible, 2)
		if err != nil || safe {
			t.Fatalf("safe=%v err=%v, want false", safe, err)
		}
	})
}

// Property: gadget safety equals DPLL unsatisfiability on random 3-CNFs.
func TestQuickUnsatGadgetEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := sat.Random3CNF(5, 3+rng.Intn(25), rng)
		m, visible := UnsatGadget(g)
		mv := NewModuleView(m)
		safe, err := mv.IsSafe(visible, 2)
		if err != nil {
			return false
		}
		return safe == !g.Satisfiable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Theorem 3 consistency: properties (P1) and (P2) hold for the real modules
// M1 and M2 with ℓ = 8 and Γ = 2 (output y always visible).
func TestTheorem3AdversaryConsistency(t *testing.T) {
	inst := Theorem3Instance{Ell: 8}
	names := inst.InputNames()
	special := relation.NewNameSet(names[0], names[1], names[2], names[3])
	m1 := NewModuleView(inst.M1())
	m2 := NewModuleView(inst.M2(special))

	// Enumerate all visible input subsets (y visible).
	for mask := 0; mask < 1<<8; mask++ {
		visible := relation.NewNameSet("y")
		size := 0
		for i, n := range names {
			if mask&(1<<i) != 0 {
				visible.Add(n)
				size++
			}
		}
		visInputs := visible.Minus(relation.NewNameSet("y"))
		safe1, err := m1.IsSafe(visible, 2)
		if err != nil {
			t.Fatal(err)
		}
		safe2, err := m2.IsSafe(visible, 2)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case size < 2: // |V| < ℓ/4: both answer safe (P1)
			if !safe1 || !safe2 {
				t.Fatalf("P1 violated at %v: m1=%v m2=%v", visInputs, safe1, safe2)
			}
		case visInputs.SubsetOf(special): // the special exception for m2
			if safe1 {
				t.Fatalf("m1 safe at %v (size %d)", visInputs, size)
			}
			if !safe2 {
				t.Fatalf("m2 unsafe at special subset %v", visInputs)
			}
		default: // (P2)
			if safe1 || safe2 {
				t.Fatalf("P2 violated at %v: m1=%v m2=%v", visInputs, safe1, safe2)
			}
		}
	}
}

// The two adversary functions have the claimed optimal costs: m2 has a safe
// subset of cost ℓ/2 while m1's cheapest safe subset costs more than 3ℓ/4
// — the gap the oracle lower bound exploits. (ℓ = 8: 4 vs > 6.)
func TestTheorem3CostGap(t *testing.T) {
	inst := Theorem3Instance{Ell: 8}
	names := inst.InputNames()
	special := relation.NewNameSet(names[0], names[1], names[2], names[3])
	costs := inst.Costs()

	res1, err := NewModuleView(inst.M1()).MinCostSafeSubset(costs, 2)
	if err != nil || !res1.Found {
		t.Fatal(err)
	}
	if res1.Cost < 3.0*8/4+1 { // integral costs: > 6 means >= 7
		t.Errorf("m1 min cost = %v, want >= 7", res1.Cost)
	}
	res2, err := NewModuleView(inst.M2(special)).MinCostSafeSubset(costs, 2)
	if err != nil || !res2.Found {
		t.Fatal(err)
	}
	if res2.Cost != 4 {
		t.Errorf("m2 min cost = %v, want ℓ/2 = 4", res2.Cost)
	}
}

func TestAdversaryOracleAccounting(t *testing.T) {
	a := NewAdversaryOracle(16)
	if a.CandidateSpace() < 12000 || a.CandidateSpace() > 13000 {
		t.Errorf("C(16,8) = %v, want 12870", a.CandidateSpace())
	}
	// A small visible set answers YES without eliminating candidates.
	safe, _ := a.IsSafe(relation.NewNameSet("x1", "x2", "x3"))
	if !safe {
		t.Error("small visible set answered NO")
	}
	before := a.RemainingCandidates()
	// A size-4 (= ℓ/4) visible set answers NO and eliminates candidates.
	safe, _ = a.IsSafe(relation.NewNameSet("x1", "x2", "x3", "x4"))
	if safe {
		t.Error("ℓ/4 visible set answered YES")
	}
	if a.RemainingCandidates() >= before {
		t.Error("NO answer did not reduce candidate bound")
	}
	if a.Queries() != 2 {
		t.Errorf("queries = %d, want 2", a.Queries())
	}
	// The lower bound formula grows like (4/3)^(ℓ/2).
	if QueryLowerBound(16) <= QueryLowerBound(8) {
		t.Error("query lower bound not increasing in ℓ")
	}
	if lb := QueryLowerBound(8); lb < 3 { // (4/3)^4 ≈ 3.16
		t.Errorf("QueryLowerBound(8) = %v, want >= 3", lb)
	}
}

// Driving the exhaustive oracle search against the adversary shows the
// exponential blow-up: certifying no budget-ℓ/2 solution exists for m1
// consumes a number of calls that grows with 2^ℓ.
func TestOracleSearchAgainstAdversary(t *testing.T) {
	prev := 0
	for _, ell := range []int{4, 8, 12} {
		inst := Theorem3Instance{Ell: ell}
		adv := NewAdversaryOracle(ell)
		oracle := &CountingOracle{Inner: adv}
		attrs := append(inst.InputNames(), "y")
		hidden, _, calls, err := MinCostSafeSubsetWithOracle(attrs, inst.Costs(), oracle, float64(ell)/2)
		if err != nil {
			t.Fatal(err)
		}
		if hidden != nil {
			t.Errorf("ℓ=%d: adversary conceded a solution %v", ell, hidden)
		}
		if calls <= prev {
			t.Errorf("ℓ=%d: calls %d did not grow (prev %d)", ell, calls, prev)
		}
		prev = calls
	}
}
