package privacy

import (
	"fmt"

	"secureview/internal/relation"
)

// This file explores the paper's first future-work direction (section 6):
// "a finer privacy analysis may be possible if one knows what kind of prior
// knowledge the user has ... the effect of knowledge of a possibly non-
// uniform prior distribution on input/output values should be explored."
//
// Γ-privacy guarantees the adversary cannot guess m(x) with probability
// above 1/Γ *under a uniform prior over the possible worlds*. With a
// non-uniform prior over hidden attribute values, the posterior
// concentrates and the effective guessing probability can exceed 1/Γ even
// though |OUT| >= Γ. GuessProbability quantifies that.

// Prior assigns, per attribute, a probability distribution over its domain
// values. Attributes absent from the map are treated as uniform.
type Prior map[string][]float64

// UniformPrior returns an explicit uniform prior for the given attributes
// of the schema.
func UniformPrior(s *relation.Schema, names ...string) Prior {
	p := make(Prior, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			continue
		}
		d := s.Attr(i).Domain
		dist := make([]float64, d)
		for v := range dist {
			dist[v] = 1 / float64(d)
		}
		p[n] = dist
	}
	return p
}

// Validate checks that every distribution matches its attribute's domain
// and sums to 1 (within tolerance).
func (p Prior) Validate(s *relation.Schema) error {
	for name, dist := range p {
		i := s.IndexOf(name)
		if i < 0 {
			return fmt.Errorf("privacy: prior names unknown attribute %q", name)
		}
		if len(dist) != s.Attr(i).Domain {
			return fmt.Errorf("privacy: prior for %q has %d entries, domain is %d",
				name, len(dist), s.Attr(i).Domain)
		}
		sum := 0.0
		for _, v := range dist {
			if v < 0 {
				return fmt.Errorf("privacy: prior for %q has negative mass", name)
			}
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return fmt.Errorf("privacy: prior for %q sums to %v", name, sum)
		}
	}
	return nil
}

// weight returns the prior probability of value v for the named attribute
// with the given domain (uniform when the prior has no entry).
func (p Prior) weight(name string, domain int, v relation.Value) float64 {
	dist, ok := p[name]
	if !ok {
		return 1 / float64(domain)
	}
	return dist[v]
}

// GuessProbability returns the adversary's best posterior probability of
// guessing m(x)'s true value, given the visible view and a prior over
// hidden OUTPUT attribute values (hidden output coordinates are assumed
// independent under the prior; the visible coordinates are observed, and
// the candidate set is OUT_{x,m}).
//
// Under a uniform prior this equals 1/|OUT_x| <= 1/Γ, recovering the
// paper's guarantee; skewed priors push it up, demonstrating the section 6
// caveat. The result is an upper bound on guessing success for priors that
// factor over hidden output attributes.
func (mv ModuleView) GuessProbability(visible relation.NameSet, x relation.Tuple, prior Prior) (float64, error) {
	outSchema, err := mv.Rel.Schema().Project(mv.Outputs)
	if err != nil {
		return 0, err
	}
	if err := prior.Validate(outSchema); err != nil {
		return 0, err
	}
	out, err := mv.OutSet(visible, x)
	if err != nil {
		return 0, err
	}
	if len(out) == 0 {
		return 0, fmt.Errorf("privacy: empty OUT set")
	}
	total := 0.0
	best := 0.0
	for _, y := range out {
		w := 1.0
		for i, name := range mv.Outputs {
			if visible.Has(name) {
				continue // observed, not weighted
			}
			w *= prior.weight(name, outSchema.Attr(i).Domain, y[i])
		}
		total += w
		if w > best {
			best = w
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("privacy: prior assigns zero mass to every candidate")
	}
	return best / total, nil
}
